"""T-BFA: the targeted bit-flip attack of Rakin et al. (arXiv:2007.12336).

Where BFA maximises the victim's loss indiscriminately, T-BFA *steers*
it.  The paper defines three regimes, all reproduced here on top of one
:class:`TargetedBitSearch` engine:

* **N-to-1** -- every input, whatever its true class, should classify
  as the attacker's target class;
* **1-to-1** -- inputs of one source class should classify as the
  target class, with no constraint on the rest;
* **1-to-1 stealthy** -- the source class is redirected *while the
  accuracy on every other class is explicitly preserved*, so the
  hijack stays invisible to aggregate accuracy monitoring.

The engine minimises a weighted sum of cross-entropy terms
(:class:`CETerm`): per iteration it ranks candidate weight bits by the
analytic objective change ``grad * delta_w`` a flip would cause,
evaluates the best few with real forward passes (through the shared
suffix-forward :class:`~repro.attacks.session.SearchSession`, like
BFA), and commits the flip that lowers the objective most -- executed
either directly on the quantized payload or through the DRAM simulator
via RowHammer.  An optional ``constraint`` predicate restricts the search to
physically hammerable bits (see :mod:`repro.attacks.backdoor`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..nn.data import Dataset
from ..nn.quant import QuantizedModel
from ..nn.storage import WeightStore
from .bfa import flip_loss_estimates
from .hammer import HammerDriver, execute_weight_flip
from .registry import AttackContext, register_attack
from .session import SearchSession

__all__ = [
    "CETerm",
    "TBFAConfig",
    "TBFARecord",
    "TBFAResult",
    "TargetedBitSearch",
    "TBFAttack",
    "TBFA_VARIANTS",
]

TBFA_VARIANTS = ("n-to-1", "1-to-1", "1-to-1-stealthy")

#: Feasibility predicate over ``(tensor, flat_index, bit, current_bit)``.
FlipConstraint = Callable[[str, int, int, int], bool]


@dataclass(frozen=True)
class CETerm:
    """One weighted cross-entropy term of a targeted objective."""

    x: np.ndarray
    labels: np.ndarray
    weight: float = 1.0


@dataclass(frozen=True)
class TBFAConfig:
    """Hyper-parameters of one targeted attack run."""

    variant: str = "n-to-1"
    target_class: int = 0
    source_class: int = 1
    attack_batch: int = 64
    candidates_per_layer: int = 10
    evals_per_layer: int = 3
    layers_to_evaluate: int = 6
    eval_limit: int = 512
    #: Weight of the keep-everything-else-correct term (stealthy mode).
    stealth_weight: float = 1.0
    #: Stop once the attack success rate reaches this level (percent).
    stop_at_asr: float | None = None
    #: Candidate-evaluation engine ("suffix" or the "full" reference);
    #: bit-identical outcomes, different wall-clock.
    engine: str = "suffix"
    seed: int = 0


@dataclass
class TBFARecord:
    """One committed (or attempted) targeted flip."""

    iteration: int
    tensor: str
    flat_index: int
    bit: int
    executed: bool
    objective_after: float
    asr_after: float
    accuracy_after: float
    activations_blocked: int = 0


@dataclass
class TBFAResult:
    """ASR / accuracy trajectories of one targeted attack run."""

    asr: list[float] = field(default_factory=list)
    accuracies: list[float] = field(default_factory=list)
    objectives: list[float] = field(default_factory=list)
    flips: list[TBFARecord] = field(default_factory=list)

    @property
    def executed_flips(self) -> int:
        return sum(1 for flip in self.flips if flip.executed)

    @property
    def final_asr(self) -> float:
        return self.asr[-1] if self.asr else 0.0


class TargetedBitSearch:
    """Progressive bit search that *minimises* a targeted objective.

    The objective is ``sum(term.weight * CE(term.x, term.labels))``;
    ``asr_inputs``/``asr_target`` define the success metric (fraction of
    the given inputs classified as the target, in percent).
    """

    def __init__(
        self,
        qmodel: QuantizedModel,
        dataset: Dataset,
        terms: Sequence[CETerm],
        asr_inputs: np.ndarray,
        asr_target: int,
        config: TBFAConfig,
        store: WeightStore | None = None,
        driver: HammerDriver | None = None,
        before_execute=None,
        constraint: FlipConstraint | None = None,
    ):
        if (store is None) != (driver is None):
            raise ValueError("provide both store and driver, or neither")
        if not terms:
            raise ValueError("targeted objective needs at least one term")
        self.qmodel = qmodel
        self.dataset = dataset
        self.terms = list(terms)
        self.asr_inputs = asr_inputs
        self.asr_target = asr_target
        self.config = config
        self.store = store
        self.driver = driver
        self.before_execute = before_execute
        self.constraint = constraint
        self.session = SearchSession(qmodel, engine=config.engine)
        # Slice the accuracy-probe subset once (it never changes).
        limit = config.eval_limit
        self.eval_x = dataset.test_x[:limit]
        self.eval_y = dataset.test_y[:limit]
        self._visited: set[tuple[str, int, int]] = set()

    # ------------------------------------------------------------------
    # Objective
    # ------------------------------------------------------------------
    def objective(self) -> float:
        return self.session.objective(self.terms)

    # ------------------------------------------------------------------
    # Candidate search (mirrors BFA's ranking, with the sign flipped:
    # we want the most *negative* estimated objective change)
    # ------------------------------------------------------------------
    def _feasible(self, name: str, index: int, bit: int) -> bool:
        if (name, index, bit) in self._visited:
            return False
        if self.constraint is None:
            return True
        current = int(
            self.qmodel.tensors[name].q.reshape(-1).view(np.uint8)[index]
            >> bit
        ) & 1
        return self.constraint(name, index, bit, current)

    def _rank_candidates(self) -> list[tuple[float, str, int, int]]:
        grads = self.session.objective_grads(self.terms)
        per_layer: list[tuple[float, str, int, int]] = []
        k = self.config.candidates_per_layer
        for name, tensor in self.qmodel.tensors.items():
            grad = grads[name]
            if grad.size == 0:
                continue
            top = np.argsort(np.abs(grad))[-k:]
            estimate = flip_loss_estimates(
                tensor.q.reshape(-1)[top], tensor.scale, grad[top]
            )  # negative = objective down
            order = np.argsort(estimate.reshape(-1))
            taken = 0
            for flat in order:
                weight_pos, bit = divmod(int(flat), 8)
                index = int(top[weight_pos])
                if self._feasible(name, index, bit):
                    per_layer.append(
                        (float(estimate.reshape(-1)[flat]), name, index, bit)
                    )
                    taken += 1
                    if taken >= self.config.evals_per_layer:
                        break
        per_layer.sort()
        return per_layer

    def _choose_flip(self) -> tuple[str, int, int, float] | None:
        candidates = self._rank_candidates()[: self.config.layers_to_evaluate]
        objectives = self.session.evaluate_flips(
            self.terms, [(name, index, bit) for _, name, index, bit in candidates]
        )
        best = None
        for (_, name, index, bit), objective in zip(candidates, objectives):
            if best is None or objective < best[3]:
                best = (name, index, bit, objective)
        return best

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def attack_success_rate(self) -> float:
        """Percent of the ASR inputs classified as the target class."""
        if self.asr_inputs.shape[0] == 0:
            return 0.0
        return self.session.success_rate(self.asr_inputs, self.asr_target)

    # ------------------------------------------------------------------
    # Attack loop
    # ------------------------------------------------------------------
    def run(self, iterations: int) -> TBFAResult:
        result = TBFAResult()
        for iteration in range(1, iterations + 1):
            if self.store is not None:
                self.store.sync_model()
            choice = self._choose_flip()
            if choice is None:
                break  # constraint exhausted every candidate
            name, index, bit, _ = choice
            self._visited.add((name, index, bit))
            if self.before_execute is not None:
                self.before_execute(name, index, bit)
            executed, blocked = self._execute_flip(name, index, bit)
            if self.store is not None:
                self.store.sync_model()
            objective = self.objective()
            asr = self.attack_success_rate()
            accuracy = self.session.accuracy(self.eval_x, self.eval_y)
            result.flips.append(
                TBFARecord(
                    iteration=iteration,
                    tensor=name,
                    flat_index=index,
                    bit=bit,
                    executed=executed,
                    objective_after=objective,
                    asr_after=asr,
                    accuracy_after=accuracy,
                    activations_blocked=blocked,
                )
            )
            result.objectives.append(objective)
            result.asr.append(asr)
            result.accuracies.append(accuracy)
            if (
                self.config.stop_at_asr is not None
                and asr >= self.config.stop_at_asr
            ):
                break
        return result

    def _execute_flip(self, name: str, index: int, bit: int) -> tuple[bool, int]:
        return execute_weight_flip(
            self.qmodel, self.store, self.driver, name, index, bit
        )


class TBFAttack(TargetedBitSearch):
    """The three T-BFA regimes, assembled from the shared engine."""

    def __init__(
        self,
        qmodel: QuantizedModel,
        dataset: Dataset,
        config: TBFAConfig | None = None,
        store: WeightStore | None = None,
        driver: HammerDriver | None = None,
        before_execute=None,
        constraint: FlipConstraint | None = None,
    ):
        config = config or TBFAConfig()
        if config.variant not in TBFA_VARIANTS:
            raise ValueError(
                f"unknown T-BFA variant {config.variant!r}; "
                f"choose from {TBFA_VARIANTS}"
            )
        target = config.target_class
        if not 0 <= target < dataset.num_classes:
            raise ValueError(f"target class {target} out of range")
        rng = np.random.default_rng(config.seed)
        batch = min(config.attack_batch, dataset.test_x.shape[0])
        x, y = dataset.sample_attack_batch(batch, rng)

        if config.variant == "n-to-1":
            terms = [CETerm(x, np.full(y.shape, target, dtype=y.dtype))]
            # Success = non-target inputs dragged into the target class.
            asr_mask = dataset.test_y != target
        else:
            source = config.source_class
            if source == target:
                raise ValueError("source and target class must differ")
            src = y == source
            if not src.any():
                raise ValueError(
                    f"attack batch has no samples of source class {source}"
                )
            terms = [
                CETerm(
                    x[src], np.full(int(src.sum()), target, dtype=y.dtype)
                )
            ]
            if config.variant == "1-to-1-stealthy" and (~src).any():
                terms.append(
                    CETerm(x[~src], y[~src], weight=config.stealth_weight)
                )
            asr_mask = dataset.test_y == source

        limit = config.eval_limit
        asr_inputs = dataset.test_x[asr_mask][:limit]
        super().__init__(
            qmodel,
            dataset,
            terms,
            asr_inputs,
            target,
            config,
            store=store,
            driver=driver,
            before_execute=before_execute,
            constraint=constraint,
        )


def _build_tbfa(variant: str, ctx: AttackContext, **params) -> TBFAttack:
    params.setdefault("engine", ctx.engine)
    config = TBFAConfig(
        variant=variant,
        attack_batch=ctx.attack_batch,
        seed=ctx.seed,
        **params,
    )
    return TBFAttack(
        ctx.qmodel,
        ctx.dataset,
        config,
        store=ctx.store,
        driver=ctx.driver,
        before_execute=ctx.before_execute,
    )


@register_attack(
    "tbfa-n-to-1",
    description="T-BFA: classify every input as the target class",
    targeted=True,
)
def _tbfa_n_to_1(ctx: AttackContext, **params) -> TBFAttack:
    return _build_tbfa("n-to-1", ctx, **params)


@register_attack(
    "tbfa-1-to-1",
    description="T-BFA: redirect one source class to the target class",
    targeted=True,
)
def _tbfa_1_to_1(ctx: AttackContext, **params) -> TBFAttack:
    return _build_tbfa("1-to-1", ctx, **params)


@register_attack(
    "tbfa-stealthy",
    description=(
        "T-BFA: redirect one source class while preserving the rest"
    ),
    targeted=True,
)
def _tbfa_stealthy(ctx: AttackContext, **params) -> TBFAttack:
    return _build_tbfa("1-to-1-stealthy", ctx, **params)
