"""PTA: the page-table attack (threat model of Fig. 3(b), after PT-Guard).

The victim's weight pages are reached through a two-level page table in
DRAM.  The attacker:

1. allocates a frame whose number differs from a victim frame's in one
   bit and fills it with malicious bytes (step 1-2 of Fig. 3(b));
2. locates the victim's leaf PTE and the row-bit position of that PFN
   bit (the "detailed mapping" of the threat model);
3. RowHammers the PTE row's neighbours to flip the bit, redirecting the
   victim's virtual page to the malicious frame (step 3);
4. the victim's next inference walks the corrupted table and streams
   weights from the wrong frame.

With DRAM-Locker protecting the page-table rows, step 3's activations
are skipped and translation stays intact.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..nn.data import Dataset
from ..nn.quant import QuantizedModel
from ..nn.storage import WeightStore
from ..vm.mmu import MMU
from ..vm.page_table import PageTable
from ..vm.pte import pfn_bit_positions
from .hammer import HammerDriver
from .registry import AttackContext, register_attack

__all__ = [
    "PagedWeights",
    "PTARecord",
    "PTAResult",
    "PageTableAttack",
    "build_paged_weights",
]


def build_paged_weights(
    store: WeightStore, controller, locker=None
) -> PagedWeights:
    """Standard PTA experiment plumbing, shared by the figure runner
    and the registry builder: page-table rows live in the last bank,
    spaced so their guard rows never collide with each other; when a
    locker is given, the table rows get adjacent-row protection."""
    from ..locker.planner import LockMode

    device = store.device
    mapper = device.mapper
    bank = device.config.banks - 1
    pt_rows = [mapper.row_index((bank, 0, local)) for local in range(0, 32, 2)]
    page_table = PageTable(device, pt_rows)
    mmu = MMU(controller, page_table)
    paged = PagedWeights(store, page_table, mmu)
    if locker is not None:
        locker.protect(page_table.table_rows(), mode=LockMode.ADJACENT)
    return paged


class PagedWeights:
    """The victim's view: weight rows reached through the MMU."""

    def __init__(
        self,
        store: WeightStore,
        page_table: PageTable,
        mmu: MMU,
    ):
        self.store = store
        self.page_table = page_table
        self.mmu = mmu
        #: vpn assigned to each weight data row, in row order.
        self.vpn_of_row: dict[int, int] = {}
        for vpn, row in enumerate(store.data_rows):
            page_table.map(vpn, row)
            self.vpn_of_row[row] = vpn

    def sync_via_translation(self) -> None:
        """Load model weights through (possibly corrupted) translation."""
        self.store.sync_model(
            force=True,
            row_source=lambda row: self.mmu.translate(self.vpn_of_row[row]),
        )

    def redirected_pages(self) -> list[int]:
        """VPNs whose translation no longer points at the true frame."""
        wrong = []
        for row, vpn in self.vpn_of_row.items():
            if self.mmu.translate(vpn) != row:
                wrong.append(vpn)
        return sorted(wrong)


@dataclass
class PTARecord:
    """One PTE-redirect attempt."""

    iteration: int
    vpn: int
    pte_row: int
    pte_bit: int
    executed: bool
    accuracy_after: float
    activations_blocked: int


@dataclass
class PTAResult:
    accuracies: list[float] = field(default_factory=list)
    records: list[PTARecord] = field(default_factory=list)

    @property
    def executed_redirects(self) -> int:
        return sum(1 for record in self.records if record.executed)


class PageTableAttack:
    """Iteratively redirects the victim's most valuable weight pages."""

    def __init__(
        self,
        qmodel: QuantizedModel,
        dataset: Dataset,
        paged: PagedWeights,
        driver: HammerDriver,
        malicious_byte: int = 0x80,
        seed: int = 0,
    ):
        self.qmodel = qmodel
        self.dataset = dataset
        self.paged = paged
        self.driver = driver
        self.malicious_byte = malicious_byte
        self.rng = np.random.default_rng(seed)
        self.device = driver.device
        self._attacker_frames: dict[int, int] = {}

    # ------------------------------------------------------------------
    # Target selection: pages holding the largest-gradient weights first
    # ------------------------------------------------------------------
    def rank_victim_rows(self) -> list[int]:
        model = self.qmodel.model
        model.zero_grad()
        x = self.dataset.test_x[:64]
        y = self.dataset.test_y[:64]
        model.loss_and_grad(x, y)
        layers = model.weight_layers()
        score: dict[int, float] = {}
        for name, tensor in self.qmodel.tensors.items():
            grad = np.abs(layers[name].weight.grad.reshape(-1))
            for segment in self.paged.store._by_tensor[name]:
                chunk = grad[
                    segment.tensor_offset : segment.tensor_offset + segment.length
                ]
                score[segment.row] = score.get(segment.row, 0.0) + float(chunk.sum())
        return sorted(score, key=score.get, reverse=True)

    # ------------------------------------------------------------------
    # One redirect attempt
    # ------------------------------------------------------------------
    def _attacker_frame_for(self, victim_row: int) -> tuple[int, int] | None:
        """A frame number differing from ``victim_row`` in one PFN bit.

        Returns ``(frame, pfn_bit)`` or None if no single-bit alias is
        free.  The attacker fills the frame with malicious bytes via
        its own (legitimate, unprivileged) writes.
        """
        total = self.device.config.total_rows
        occupied = set(self.paged.store.data_rows)
        occupied.update(self.paged.page_table.table_rows())
        for bit in range(int(np.ceil(np.log2(total)))):
            alias = victim_row ^ (1 << bit)
            if alias < total and alias not in occupied:
                payload = np.full(
                    self.device.config.row_bytes, self.malicious_byte, np.uint8
                )
                self.device.poke_row(alias, payload)
                return alias, bit
        return None

    def redirect_page(self, victim_row: int, iteration: int) -> PTARecord:
        vpn = self.paged.vpn_of_row[victim_row]
        alias = self._attacker_frame_for(victim_row)
        if alias is None:
            raise RuntimeError("no single-bit alias frame available")
        _, pfn_bit = alias
        pte_row, pte_offset = self.paged.page_table.pte_location(vpn)
        row_bit = pfn_bit_positions(pte_offset, pfn_bit)
        outcome = self.driver.hammer_bit(pte_row, row_bit)
        self.paged.mmu.flush_tlb()
        self.paged.sync_via_translation()
        accuracy = self.qmodel.model.accuracy(
            self.dataset.test_x[:512], self.dataset.test_y[:512]
        )
        return PTARecord(
            iteration=iteration,
            vpn=vpn,
            pte_row=pte_row,
            pte_bit=row_bit,
            executed=outcome.flipped,
            accuracy_after=accuracy,
            activations_blocked=outcome.activations_blocked,
        )

    # ------------------------------------------------------------------
    # Attack loop
    # ------------------------------------------------------------------
    def run(self, iterations: int) -> PTAResult:
        result = PTAResult()
        targets = self.rank_victim_rows()
        cursor = 0
        for iteration in range(1, iterations + 1):
            victim_row = targets[cursor % len(targets)]
            cursor += 1
            record = self.redirect_page(victim_row, iteration)
            result.records.append(record)
            result.accuracies.append(record.accuracy_after)
        return result


@register_attack(
    "pta",
    description="Page-table attack: PTE bit flips redirect weight pages",
)
def _pta(ctx: AttackContext, **params) -> PageTableAttack:
    """Builds the paged-weights view (and locks the page-table rows when
    the system's controller carries a locker), then aims the attack."""
    if ctx.store is None or ctx.driver is None:
        raise ValueError("the page-table attack needs a DRAM-resident victim")
    controller = ctx.driver.controller
    paged = build_paged_weights(
        ctx.store, controller, locker=getattr(controller, "locker", None)
    )
    return PageTableAttack(
        ctx.qmodel, ctx.dataset, paged, ctx.driver, seed=ctx.seed, **params
    )
