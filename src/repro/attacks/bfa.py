"""BFA: the progressive bit search of Rakin et al. (ICCV 2019).

Per iteration:

1. compute loss gradients w.r.t. the (dequantized) weights on the
   attack batch (the paper samples 128 test images);
2. inside each layer, rank candidate weights by ``|grad|`` and, for the
   top-k, score every stored bit by the *analytic* loss change
   ``grad * delta_w`` a flip would cause (``delta_w`` follows from
   two's-complement int8 arithmetic -- MSB flips move a weight by half
   the dynamic range);
3. evaluate the best candidate of each of the most promising layers
   with a real forward pass (flip, measure, revert -- executed through
   the shared :class:`~repro.attacks.session.SearchSession`, which
   recomputes only the layers downstream of each candidate) and commit
   the one that maximises the loss;
4. execute the committed flip -- either directly on the quantized
   payload (pure software ablation) or *through the DRAM simulator*
   via a RowHammer campaign against the weight store.

Step 4 is where DRAM-Locker bites: a blocked campaign wastes the whole
iteration, which is exactly the "attacker needs ever more iterations"
effect of the paper's Fig. 8.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..nn.data import Dataset
from ..nn.quant import QuantizedModel
from ..nn.storage import WeightStore
from .hammer import HammerDriver, execute_weight_flip
from .registry import AttackContext, register_attack
from .session import SearchSession, SearchTerm

__all__ = [
    "BFAConfig",
    "FlipRecord",
    "BFAResult",
    "ProgressiveBitSearch",
    "flip_loss_estimates",
]


def flip_loss_estimates(
    q: np.ndarray, scale: float, grad: np.ndarray
) -> np.ndarray:
    """Analytic loss change ``grad * delta_w`` of flipping each stored
    bit of each weight: a ``(len(q), 8)`` array under two's-complement
    int8 arithmetic (an MSB flip moves a weight by half the dynamic
    range).  Shared by the untargeted (BFA) and targeted (T-BFA /
    backdoor) searches so the bit arithmetic cannot diverge."""
    q16 = np.asarray(q, dtype=np.int16)
    flipped = q16[:, None] ^ (1 << np.arange(8))[None, :]
    flipped = np.where(flipped >= 128, flipped - 256, flipped)
    delta_w = (flipped - q16[:, None]) * scale
    return grad[:, None] * delta_w


@dataclass(frozen=True)
class BFAConfig:
    """Attack hyper-parameters."""

    attack_batch: int = 128
    candidates_per_layer: int = 10
    #: Per layer, how many top-estimate candidates get a real forward pass.
    evals_per_layer: int = 3
    layers_to_evaluate: int = 6
    #: Cap on test images used for the per-iteration accuracy probe.
    eval_limit: int = 512
    #: Candidate-evaluation engine: "suffix" (activation-cached, the
    #: default) or "full" (the per-candidate full-forward reference).
    #: Outcomes are bit-identical; only wall-clock differs.
    engine: str = "suffix"
    seed: int = 0


@dataclass
class FlipRecord:
    """One committed (or attempted) bit flip."""

    iteration: int
    tensor: str
    flat_index: int
    bit: int
    executed: bool
    loss_after: float
    accuracy_after: float
    activations_blocked: int = 0


@dataclass
class BFAResult:
    """Accuracy trajectory of one attack run."""

    accuracies: list[float] = field(default_factory=list)
    losses: list[float] = field(default_factory=list)
    flips: list[FlipRecord] = field(default_factory=list)

    @property
    def executed_flips(self) -> int:
        return sum(1 for flip in self.flips if flip.executed)

    def iterations_to_reach(self, accuracy_pct: float) -> int | None:
        """First iteration at which accuracy fell to/under the target."""
        for index, accuracy in enumerate(self.accuracies):
            if accuracy <= accuracy_pct:
                return index + 1
        return None


class ProgressiveBitSearch:
    """The BFA attacker."""

    def __init__(
        self,
        qmodel: QuantizedModel,
        dataset: Dataset,
        config: BFAConfig | None = None,
        store: WeightStore | None = None,
        driver: HammerDriver | None = None,
        repair=None,
        before_execute=None,
    ):
        """``store``/``driver`` route flips through the DRAM simulator;
        both ``None`` means a pure software attack (Fig. 1(a) mode).
        ``repair`` is an optional post-flip model repair hook (the
        weight-reconstruction defense of Table II).  ``before_execute``
        is called with the chosen ``(tensor, index, bit)`` right before
        the RowHammer campaign -- the protected-system experiments use
        it to interleave the background tenant traffic whose unlock
        SWAPs are DRAM-Locker's failure surface."""
        if (store is None) != (driver is None):
            raise ValueError("provide both store and driver, or neither")
        self.qmodel = qmodel
        self.dataset = dataset
        self.config = config or BFAConfig()
        self.store = store
        self.driver = driver
        self.repair = repair
        self.before_execute = before_execute
        rng = np.random.default_rng(self.config.seed)
        batch = min(self.config.attack_batch, dataset.test_x.shape[0])
        self.attack_x, self.attack_y = dataset.sample_attack_batch(batch, rng)
        #: The search objective as the shared engine sees it.
        self.terms = (SearchTerm(self.attack_x, self.attack_y),)
        self.session = SearchSession(qmodel, engine=self.config.engine)
        # Slice the accuracy-probe subset once; re-slicing it every
        # iteration bought nothing (the arrays never change).
        limit = self.config.eval_limit
        self.eval_x = dataset.test_x[:limit]
        self.eval_y = dataset.test_y[:limit]
        # Progressive search never revisits a bit: flipping one back
        # would just undo progress (and oscillate).
        self._visited: set[tuple[str, int, int]] = set()

    # ------------------------------------------------------------------
    # Candidate search
    # ------------------------------------------------------------------
    def _rank_candidates(self) -> list[tuple[float, str, int, int]]:
        """Best (estimated dloss, tensor, index, bit) per layer, sorted."""
        grads = self.session.objective_grads(self.terms)
        per_layer: list[tuple[float, str, int, int]] = []
        k = self.config.candidates_per_layer
        for name, tensor in self.qmodel.tensors.items():
            grad = grads[name]
            if grad.size == 0:
                continue
            top = np.argsort(np.abs(grad))[-k:]
            estimate = flip_loss_estimates(
                tensor.q.reshape(-1)[top], tensor.scale, grad[top]
            )  # positive = loss up
            order = np.argsort(estimate.reshape(-1))[::-1]
            taken = 0
            for flat in order:
                weight_pos, bit = divmod(int(flat), 8)
                candidate = (name, int(top[weight_pos]), bit)
                if candidate not in self._visited:
                    per_layer.append(
                        (float(estimate.reshape(-1)[flat]), *candidate)
                    )
                    taken += 1
                    if taken >= self.config.evals_per_layer:
                        break
        per_layer.sort(reverse=True)
        return per_layer

    def _choose_flip(self) -> tuple[str, int, int, float]:
        """Real-forward-pass evaluation of the top per-layer candidates
        (suffix-cached and same-layer-batched through the session)."""
        candidates = self._rank_candidates()[: self.config.layers_to_evaluate]
        losses = self.session.evaluate_flips(
            self.terms, [(name, index, bit) for _, name, index, bit in candidates]
        )
        best = None
        for (_, name, index, bit), loss in zip(candidates, losses):
            if best is None or loss > best[3]:
                best = (name, index, bit, loss)
        if best is None:
            raise RuntimeError("no flip candidates found")
        return best

    # ------------------------------------------------------------------
    # Attack loop
    # ------------------------------------------------------------------
    def run(self, iterations: int, stop_at_accuracy: float | None = None) -> BFAResult:
        """Run the attack; accuracy is recorded after every iteration."""
        result = BFAResult()
        for iteration in range(1, iterations + 1):
            if self.store is not None:
                self.store.sync_model()
            name, index, bit, _ = self._choose_flip()
            self._visited.add((name, index, bit))
            if self.before_execute is not None:
                self.before_execute(name, index, bit)
            executed, blocked = self._execute_flip(name, index, bit)
            if self.store is not None:
                self.store.sync_model()
            if self.repair is not None:
                self.repair(self.qmodel.model)
            loss = self.session.objective(self.terms, key="loss")
            accuracy = self.session.accuracy(self.eval_x, self.eval_y)
            result.flips.append(
                FlipRecord(
                    iteration=iteration,
                    tensor=name,
                    flat_index=index,
                    bit=bit,
                    executed=executed,
                    loss_after=loss,
                    accuracy_after=accuracy,
                    activations_blocked=blocked,
                )
            )
            result.losses.append(loss)
            result.accuracies.append(accuracy)
            if stop_at_accuracy is not None and accuracy <= stop_at_accuracy:
                break
        return result

    def _execute_flip(self, name: str, index: int, bit: int) -> tuple[bool, int]:
        return execute_weight_flip(
            self.qmodel, self.store, self.driver, name, index, bit
        )


@register_attack(
    "bfa",
    description="Untargeted progressive bit search (Rakin et al. 2019)",
)
def _bfa(ctx: AttackContext, **params) -> ProgressiveBitSearch:
    params.setdefault("engine", ctx.engine)
    config = BFAConfig(attack_batch=ctx.attack_batch, seed=ctx.seed, **params)
    return ProgressiveBitSearch(
        ctx.qmodel,
        ctx.dataset,
        config,
        store=ctx.store,
        driver=ctx.driver,
        before_execute=ctx.before_execute,
    )
