"""Random bit-flip baseline (Fig. 1(a)'s comparison curve).

Flips uniformly random bits of uniformly random weights -- the level of
damage an attacker achieves with no gradient information, and the level
the paper says DRAM-Locker downgrades a *targeted* attacker to.
"""

from __future__ import annotations

import numpy as np

from ..nn.data import Dataset
from ..nn.quant import QuantizedModel
from ..nn.storage import WeightStore
from .bfa import BFAResult, FlipRecord
from .hammer import HammerDriver
from .registry import AttackContext, register_attack

__all__ = ["RandomAttack"]


class RandomAttack:
    """Uniformly random weight-bit flipper."""

    def __init__(
        self,
        qmodel: QuantizedModel,
        dataset: Dataset,
        seed: int = 0,
        store: WeightStore | None = None,
        driver: HammerDriver | None = None,
        eval_limit: int = 512,
    ):
        if (store is None) != (driver is None):
            raise ValueError("provide both store and driver, or neither")
        self.qmodel = qmodel
        self.dataset = dataset
        self.rng = np.random.default_rng(seed)
        self.store = store
        self.driver = driver
        self.eval_limit = eval_limit
        sizes = {name: t.q.size for name, t in qmodel.tensors.items()}
        self._names = list(sizes)
        total = sum(sizes.values())
        self._weights = np.array([sizes[n] / total for n in self._names])

    def run(self, iterations: int) -> BFAResult:
        result = BFAResult()
        for iteration in range(1, iterations + 1):
            name = self.rng.choice(self._names, p=self._weights)
            tensor = self.qmodel.tensors[name]
            index = int(self.rng.integers(tensor.q.size))
            bit = int(self.rng.integers(8))
            if self.store is None:
                self.qmodel.flip_bit(name, index, bit)
                executed, blocked = True, 0
            else:
                assert self.driver is not None
                row, row_bit = self.store.bit_location(name, index, bit)
                outcome = self.driver.hammer_bit(row, row_bit)
                executed, blocked = outcome.flipped, outcome.activations_blocked
                self.store.sync_model()
            loss = self.qmodel.model.loss(
                self.dataset.test_x[:128], self.dataset.test_y[:128]
            )
            limit = self.eval_limit
            accuracy = self.qmodel.model.accuracy(
                self.dataset.test_x[:limit], self.dataset.test_y[:limit]
            )
            result.flips.append(
                FlipRecord(
                    iteration=iteration,
                    tensor=name,
                    flat_index=index,
                    bit=bit,
                    executed=executed,
                    loss_after=loss,
                    accuracy_after=accuracy,
                    activations_blocked=blocked,
                )
            )
            result.losses.append(loss)
            result.accuracies.append(accuracy)
        return result


@register_attack(
    "random",
    description="Uniformly random weight-bit flips (Fig. 1(a) baseline)",
)
def _random(ctx: AttackContext, **params) -> RandomAttack:
    return RandomAttack(
        ctx.qmodel,
        ctx.dataset,
        seed=ctx.seed,
        store=ctx.store,
        driver=ctx.driver,
        **params,
    )
