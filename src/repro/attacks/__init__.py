"""Adversarial DNN weight attacks executed through the DRAM simulator."""

from .bfa import BFAConfig, BFAResult, FlipRecord, ProgressiveBitSearch
from .hammer import HammerDriver, HammerOutcome
from .pta import PagedWeights, PageTableAttack, PTARecord, PTAResult
from .random_attack import RandomAttack

__all__ = [
    "BFAConfig",
    "BFAResult",
    "FlipRecord",
    "HammerDriver",
    "HammerOutcome",
    "PTARecord",
    "PTAResult",
    "PagedWeights",
    "PageTableAttack",
    "ProgressiveBitSearch",
    "RandomAttack",
]
