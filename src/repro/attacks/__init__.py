"""Adversarial DNN weight attacks executed through the DRAM simulator.

Every attack family registers itself with :mod:`repro.attacks.registry`
at import time, so this package import is what populates ``ATTACKS``.
"""

from .backdoor import BackdoorConfig, HammerableProfile, RowhammerBackdoor
from .bfa import BFAConfig, BFAResult, FlipRecord, ProgressiveBitSearch
from .hammer import HammerDriver, HammerOutcome
from .progressive import MultiRoundBFA, MultiRoundConfig, MultiRoundResult
from .pta import PagedWeights, PageTableAttack, PTARecord, PTAResult
from .random_attack import RandomAttack
from .registry import (
    ATTACKS,
    Attack,
    AttackContext,
    AttackSpec,
    available_attacks,
    build_attack,
    register_attack,
    run_attack,
)
from .session import SEARCH_ENGINES, SearchSession, SearchTerm, SessionStats
from .tbfa import (
    CETerm,
    TBFAConfig,
    TBFAResult,
    TBFAttack,
    TBFA_VARIANTS,
    TargetedBitSearch,
)

__all__ = [
    "ATTACKS",
    "Attack",
    "AttackContext",
    "AttackSpec",
    "BFAConfig",
    "BFAResult",
    "BackdoorConfig",
    "CETerm",
    "FlipRecord",
    "HammerDriver",
    "HammerOutcome",
    "HammerableProfile",
    "MultiRoundBFA",
    "MultiRoundConfig",
    "MultiRoundResult",
    "PTARecord",
    "PTAResult",
    "PagedWeights",
    "PageTableAttack",
    "ProgressiveBitSearch",
    "RandomAttack",
    "RowhammerBackdoor",
    "SEARCH_ENGINES",
    "SearchSession",
    "SearchTerm",
    "SessionStats",
    "TBFAConfig",
    "TBFAResult",
    "TBFAttack",
    "TBFA_VARIANTS",
    "TargetedBitSearch",
    "available_attacks",
    "build_attack",
    "register_attack",
    "run_attack",
]
