"""Rowhammer backdoor injection (Tol et al., arXiv:2110.07683).

An end-to-end weight attack that plants a *trigger* instead of wrecking
accuracy: after the attack, clean inputs still classify correctly, but
any input carrying the attacker's small pixel patch classifies as the
target class.  The reproduction follows the paper's pipeline:

1. **Trigger-patch training** -- the patch pixels are optimised by
   gradient descent on the input (the network is frozen) to maximise
   the target-class response, giving the flips a strong feature to
   latch onto;
2. **Constrained flip search** -- candidate weight bits are restricted
   to *hammerable* offsets: real Rowhammer profiling finds only a
   fraction of cells flippable, each in a single direction (true- vs
   anti-cell), which :class:`HammerableProfile` models as a
   deterministic per-bit predicate;
3. **Joint objective** -- the search minimises
   ``CE(triggered -> target) + clean_weight * CE(clean -> true)``, so
   the backdoor lands while clean accuracy is explicitly preserved;
4. **Execution through DRAM** -- each committed flip is a RowHammer
   campaign against the weight store, which is where DRAM-Locker's
   guard rows shut the whole pipeline down.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

from ..nn.data import Dataset
from ..nn.functional import cross_entropy_grad
from ..nn.quant import QuantizedModel
from ..nn.storage import WeightStore
from .hammer import HammerDriver
from .registry import AttackContext, register_attack
from .tbfa import CETerm, TargetedBitSearch, TBFAConfig, TBFAResult

__all__ = [
    "BackdoorConfig",
    "HammerableProfile",
    "RowhammerBackdoor",
]


@dataclass(frozen=True)
class BackdoorConfig:
    """Hyper-parameters of one backdoor-injection run."""

    target_class: int = 0
    #: Side length of the square trigger patch (bottom-right corner).
    patch_size: int = 4
    trigger_steps: int = 25
    trigger_lr: float = 0.6
    #: Pixel clip range of the optimised patch (data is ~unit normal).
    patch_clip: float = 2.5
    attack_batch: int = 64
    #: Weight of the keep-clean-accuracy objective term.
    clean_weight: float = 1.0
    #: Fraction of weight bits that profiling found hammerable.
    hammerable_fraction: float = 0.5
    candidates_per_layer: int = 10
    evals_per_layer: int = 3
    layers_to_evaluate: int = 6
    eval_limit: int = 512
    stop_at_asr: float | None = None
    #: Candidate-evaluation engine for the flip search ("suffix"/"full").
    engine: str = "suffix"
    seed: int = 0


class HammerableProfile:
    """Deterministic model of a Rowhammer profiling pass.

    Each weight bit is hammerable with probability ``fraction`` (drawn
    from a stable per-bit hash, so the profile is a property of the
    *cell*, not of the visit order), and flips in one direction only:
    a true-cell discharges 1 -> 0, an anti-cell 0 -> 1.  ``feasible``
    therefore also requires the bit's current value to match the
    direction the cell can move from.
    """

    def __init__(self, fraction: float = 0.5, seed: int = 0):
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        self.fraction = fraction
        self.seed = seed

    def _hash(self, name: str, index: int, bit: int) -> int:
        key = f"{name}:{index}:{bit}:{self.seed}".encode()
        return zlib.crc32(key)

    def is_hammerable(self, name: str, index: int, bit: int) -> bool:
        return (self._hash(name, index, bit) & 0xFFFF) / 65536.0 < self.fraction

    def flip_direction(self, name: str, index: int, bit: int) -> int:
        """The value the cell flips *to* (0 for true-cells, 1 for anti)."""
        return (self._hash(name, index, bit) >> 16) & 1

    def feasible(self, name: str, index: int, bit: int, current: int) -> bool:
        return (
            self.is_hammerable(name, index, bit)
            and current != self.flip_direction(name, index, bit)
        )


class RowhammerBackdoor:
    """Trigger training + constrained targeted bit search."""

    def __init__(
        self,
        qmodel: QuantizedModel,
        dataset: Dataset,
        config: BackdoorConfig | None = None,
        store: WeightStore | None = None,
        driver: HammerDriver | None = None,
        before_execute=None,
    ):
        self.qmodel = qmodel
        self.dataset = dataset
        self.config = config or BackdoorConfig()
        if self.config.patch_size > dataset.test_x.shape[-1]:
            raise ValueError("trigger patch larger than the input image")
        rng = np.random.default_rng(self.config.seed)
        batch = min(self.config.attack_batch, dataset.test_x.shape[0])
        self.attack_x, self.attack_y = dataset.sample_attack_batch(batch, rng)
        self.trigger = self._train_trigger(rng)
        self.profile = HammerableProfile(
            fraction=self.config.hammerable_fraction, seed=self.config.seed
        )

        target = self.config.target_class
        triggered = self.apply_trigger(self.attack_x)
        target_labels = np.full(
            self.attack_y.shape, target, dtype=self.attack_y.dtype
        )
        terms = [
            CETerm(triggered, target_labels),
            CETerm(self.attack_x, self.attack_y, weight=self.config.clean_weight),
        ]
        # ASR: non-target-class test inputs that the trigger hijacks.
        mask = dataset.test_y != target
        limit = self.config.eval_limit
        asr_inputs = self.apply_trigger(dataset.test_x[mask][:limit])
        search_config = TBFAConfig(
            variant="n-to-1",  # informational only; terms drive the search
            target_class=target,
            attack_batch=self.config.attack_batch,
            candidates_per_layer=self.config.candidates_per_layer,
            evals_per_layer=self.config.evals_per_layer,
            layers_to_evaluate=self.config.layers_to_evaluate,
            eval_limit=self.config.eval_limit,
            stop_at_asr=self.config.stop_at_asr,
            engine=self.config.engine,
            seed=self.config.seed,
        )
        self.search = TargetedBitSearch(
            qmodel,
            dataset,
            terms,
            asr_inputs,
            target,
            search_config,
            store=store,
            driver=driver,
            before_execute=before_execute,
            constraint=self.profile.feasible,
        )

    # ------------------------------------------------------------------
    # Trigger
    # ------------------------------------------------------------------
    def apply_trigger(self, x: np.ndarray) -> np.ndarray:
        """Stamp the trigger patch onto the bottom-right corner."""
        p = self.config.patch_size
        out = x.copy()
        out[:, :, -p:, -p:] = self.trigger
        return out

    def _train_trigger(self, rng: np.random.Generator) -> np.ndarray:
        """Optimise the patch pixels against the frozen network."""
        config = self.config
        p = config.patch_size
        channels = self.attack_x.shape[1]
        patch = rng.normal(0.0, 0.5, size=(channels, p, p)).astype(np.float32)
        model = self.qmodel.model
        target = np.full(
            self.attack_y.shape, config.target_class, dtype=self.attack_y.dtype
        )
        for _ in range(config.trigger_steps):
            x = self.attack_x.copy()
            x[:, :, -p:, -p:] = patch
            logits = model.forward(x)
            dx = model.net.backward(cross_entropy_grad(logits, target))
            patch -= config.trigger_lr * dx[:, :, -p:, -p:].mean(axis=0)
            np.clip(patch, -config.patch_clip, config.patch_clip, out=patch)
        model.zero_grad()  # the trigger pass must not pollute weight grads
        return patch

    # ------------------------------------------------------------------
    # Attack loop (delegates to the constrained targeted search)
    # ------------------------------------------------------------------
    def run(self, iterations: int) -> TBFAResult:
        return self.search.run(iterations)

    @property
    def clean_accuracy_now(self) -> float:
        limit = self.config.eval_limit
        return self.qmodel.model.accuracy(
            self.dataset.test_x[:limit], self.dataset.test_y[:limit]
        )


@register_attack(
    "backdoor",
    description=(
        "Rowhammer backdoor injection: trigger-patch training plus a "
        "flip search constrained to hammerable bit offsets"
    ),
    targeted=True,
)
def _backdoor(ctx: AttackContext, **params) -> RowhammerBackdoor:
    params.setdefault("engine", ctx.engine)
    config = BackdoorConfig(
        attack_batch=ctx.attack_batch, seed=ctx.seed, **params
    )
    return RowhammerBackdoor(
        ctx.qmodel,
        ctx.dataset,
        config,
        store=ctx.store,
        driver=ctx.driver,
        before_execute=ctx.before_execute,
    )
