"""SearchSession: the shared suffix-forward engine of every bit search.

Each iteration of a progressive bit search (BFA, the three T-BFA
regimes, the backdoor injection, multi-round BFA) evaluates a handful
of candidate flips with a real forward pass, then measures loss /
accuracy / ASR probes over fixed evaluation sets.  A candidate flip
perturbs exactly one weight in one top-level layer ``k``, so a full
forward pass recomputes layers ``0..k-1`` for nothing; and a blocked
campaign leaves the weight state byte-identical, so the probes
recompute a value that cannot have changed.

The session exploits both, while staying **bit-identical in outcome**
to the per-candidate full forwards it replaces:

* **Prefix-activation caching** -- every evaluation input (the attack
  batch, each objective term) gets a
  :class:`~repro.nn.model.PrefixActivationCache`; scoring a flip in
  layer ``k`` reuses the cached input of ``k`` and runs only
  ``Sequential.forward_from(k)``.  Eval-mode forwards are
  deterministic, so the suffix result is bitwise the full-forward
  result.
* **Same-layer candidate batching** -- candidates in one layer share
  the suffix ``k+1..end``; their layer-``k`` outputs are stacked along
  the batch axis and the suffix runs once (one GEMM per conv via
  :func:`repro.nn.functional.contract`).  Per-sample GEMM results can
  drift by ulps across batch sizes for some shapes, so the batched
  path is *verified bitwise once per shape class* against the
  per-candidate suffixes (the same discipline as ``contract``); shape
  classes that disagree fall back to per-candidate suffixes forever.
* **Weight-state digests** -- :meth:`refresh` re-hashes every
  top-level layer's parameters (and BatchNorm buffers) and drops
  cached activations *downstream of the first changed layer only*,
  which is how committed flips, DRAM sync collateral, and repair
  hooks invalidate precisely.  Probes (accuracy / ASR / objective)
  and the per-iteration objective gradients are memoized on the
  combined digest, so unchanged weight states -- every blocked
  campaign under DRAM-Locker -- never re-run ``predict`` or the
  gradient pass.

``engine="full"`` routes every operation through the legacy
flip -> full forward -> revert path with no caching or memoization; it
is the reference the equivalence tests (and the before/after
microbenchmark ``benchmarks/bench_attack_search.py``) compare the
suffix engine against.  Non-``Sequential`` nets fall back to it
automatically.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Callable, NamedTuple, Sequence

import numpy as np

from ..engines import SEARCH_ENGINES as _SEARCH_ENGINES, resolve_engine
from ..nn.functional import cross_entropy, cross_entropy_grad
from ..nn.layers import Sequential
from ..nn.model import PrefixActivationCache, iter_layers
from ..nn.quant import QuantizedModel

__all__ = ["SEARCH_ENGINES", "SearchTerm", "SessionStats", "SearchSession"]

SEARCH_ENGINES = _SEARCH_ENGINES

#: A candidate flip: ``(tensor path, flat weight index, bit)``.
Candidate = tuple[str, int, int]


class SearchTerm(NamedTuple):
    """One weighted cross-entropy term of a search objective.

    Structurally compatible with :class:`repro.attacks.tbfa.CETerm`;
    the session only reads ``x`` / ``labels`` / ``weight``.
    """

    x: np.ndarray
    labels: np.ndarray
    weight: float = 1.0


@dataclass
class SessionStats:
    """Work counters -- what the engine actually saved."""

    candidate_evals: int = 0
    suffix_batches: int = 0
    probe_hits: int = 0
    probe_misses: int = 0
    grad_hits: int = 0
    grad_misses: int = 0


class SearchSession:
    """Shared candidate-evaluation engine for one attack instance."""

    def __init__(self, qmodel: QuantizedModel, engine: str = "suffix"):
        resolve_engine(engine, allowed=SEARCH_ENGINES, kind="search")
        self.qmodel = qmodel
        self.model = qmodel.model
        self.stats = SessionStats()
        # Suffix execution needs a Sequential top level whose weight
        # layers are addressable by top index (both evaluation archs
        # are); anything else runs the reference engine.
        self._top_index: dict[str, int] = {}
        supported = isinstance(self.model.net, Sequential)
        if supported:
            for name in qmodel.tensors:
                head = name.split(".", 1)[0]
                if not head.isdigit():
                    supported = False
                    break
                self._top_index[name] = int(head)
        self.engine = engine if supported else "full"
        self._caches: dict[int, PrefixActivationCache] = {}
        self._probes: dict[tuple, Any] = {}
        self._grads_memo: tuple | None = None
        self._batch_ok: dict[tuple, bool] = {}
        self._layer_digests: dict[int, bytes] = {}
        self._digest: bytes | None = None

    # ------------------------------------------------------------------
    # Weight-state digests and cache invalidation
    # ------------------------------------------------------------------
    @staticmethod
    def _layer_digest(layer) -> bytes:
        h = hashlib.blake2b(digest_size=16)
        for param in layer.params().values():
            h.update(np.ascontiguousarray(param.value))
        for _, node in iter_layers(layer):
            for buffer_name in ("running_mean", "running_var"):
                value = getattr(node, buffer_name, None)
                if isinstance(value, np.ndarray):
                    h.update(np.ascontiguousarray(value))
        return h.digest()

    def refresh(self) -> None:
        """Re-scan the weight state.  The first top-level layer whose
        digest changed invalidates every cached activation downstream
        of it (its own *input* stays valid); unchanged states keep all
        caches and the probe/gradient memo keys."""
        if self.engine != "suffix":
            return
        changed: int | None = None
        parts: list[bytes] = []
        for index, layer in enumerate(self.model.net.layers):
            digest = self._layer_digest(layer)
            parts.append(digest)
            if self._layer_digests.get(index) != digest:
                self._layer_digests[index] = digest
                if changed is None:
                    changed = index
        if changed is not None or self._digest is None:
            for cache in self._caches.values():
                cache.invalidate_from(changed if changed is not None else 0)
            self._digest = hashlib.blake2b(
                b"".join(parts), digest_size=16
            ).digest()

    def state_digest(self) -> bytes | None:
        """Digest of the current weight state (``None`` on the
        reference engine, which never memoizes)."""
        self.refresh()
        return self._digest

    def _cache_for(self, x: np.ndarray) -> PrefixActivationCache:
        cache = self._caches.get(id(x))
        if cache is None:
            cache = PrefixActivationCache(self.model.net, x)
            self._caches[id(x)] = cache
        return cache

    # ------------------------------------------------------------------
    # Objective and gradients
    # ------------------------------------------------------------------
    def _full_objective(self, terms: Sequence) -> float:
        return sum(
            term.weight * self.model.loss(term.x, term.labels)
            for term in terms
        )

    def objective(self, terms: Sequence, key: str = "objective") -> float:
        """``sum(term.weight * CE(term.x))`` under the current weights,
        served from cached logits and memoized on the state digest."""
        if self.engine != "suffix":
            return self._full_objective(terms)
        return self.probe(
            key,
            lambda: sum(
                term.weight
                * cross_entropy(self._cache_for(term.x).logits(), term.labels)
                for term in terms
            ),
        )

    def _tracked_loss_and_grad(self, x: np.ndarray, labels: np.ndarray) -> float:
        """``Model.loss_and_grad``, recording every layer input into
        the activation cache along the way (the gradient pass doubles
        as the cache refill, so candidate evaluation starts warm)."""
        if self.engine != "suffix":
            return self.model.loss_and_grad(x, labels)
        cache = self._cache_for(x)
        net = self.model.net
        a = x
        cache.store(0, a)
        for index, layer in enumerate(net.layers):
            a = layer.forward(a)
            cache.store(index + 1, a)
        loss = cross_entropy(a, labels)
        net.backward(cross_entropy_grad(a, labels))
        return loss

    def objective_grads(self, terms: Sequence) -> dict[str, np.ndarray]:
        """d(objective)/d(weight) per quantized tensor, flattened.

        Memoized on the weight-state digest: a blocked campaign leaves
        the weights untouched, so the next iteration's gradient pass
        would recompute identical values.
        """
        if self.engine == "suffix":
            self.refresh()
            terms_key = tuple(id(term) for term in terms)
            memo = self._grads_memo
            if memo is not None and memo[0] == (self._digest, terms_key):
                self.stats.grad_hits += 1
                return {name: grad.copy() for name, grad in memo[1].items()}
            self.stats.grad_misses += 1
        model = self.model
        layers = model.weight_layers()
        grads: dict[str, np.ndarray] | None = None
        for term in terms:
            model.zero_grad()
            self._tracked_loss_and_grad(term.x, term.labels)
            if grads is None:
                grads = {
                    name: term.weight * layers[name].weight.grad.reshape(-1).copy()
                    for name in self.qmodel.tensors
                }
            else:
                for name in grads:
                    grads[name] += (
                        term.weight * layers[name].weight.grad.reshape(-1)
                    )
        assert grads is not None
        if self.engine == "suffix":
            self._grads_memo = (
                (self._digest, terms_key),
                {name: grad.copy() for name, grad in grads.items()},
            )
        return grads

    # ------------------------------------------------------------------
    # Candidate evaluation
    # ------------------------------------------------------------------
    def _apply_flip(self, name: str, index: int, bit: int) -> None:
        self.qmodel.tensors[name].flip_bit(index, bit)
        self.qmodel.sync_layer(name)

    def _suffix_logits(
        self, start: int, outs: list[np.ndarray]
    ) -> list[np.ndarray]:
        """Logits for each perturbed layer output, through one stacked
        suffix pass when that is verified bit-identical for this shape
        class, else through per-candidate suffixes."""
        net = self.model.net
        if len(outs) == 1:
            return [net.forward_from(outs[0], start)]
        key = (start, outs[0].shape, len(outs))
        ok = self._batch_ok.get(key)
        if ok:
            self.stats.suffix_batches += 1
            per_candidate = outs[0].shape[0]
            logits = net.forward_from(np.concatenate(outs, axis=0), start)
            return [
                logits[i * per_candidate : (i + 1) * per_candidate]
                for i in range(len(outs))
            ]
        reference = [net.forward_from(a, start) for a in outs]
        if ok is None:
            per_candidate = outs[0].shape[0]
            logits = net.forward_from(np.concatenate(outs, axis=0), start)
            batched = [
                logits[i * per_candidate : (i + 1) * per_candidate]
                for i in range(len(outs))
            ]
            self._batch_ok[key] = all(
                np.array_equal(b, r) for b, r in zip(batched, reference)
            )
        return reference

    def evaluate_flips(
        self, terms: Sequence, candidates: Sequence[Candidate]
    ) -> list[float]:
        """Objective value each candidate flip would produce, in input
        order -- bit-identical to flip -> full forward -> revert."""
        self.stats.candidate_evals += len(candidates)
        if self.engine != "suffix":
            losses = []
            for name, index, bit in candidates:
                self.qmodel.flip_bit(name, index, bit)
                losses.append(self._full_objective(terms))
                self.qmodel.flip_bit(name, index, bit)  # revert
            self.qmodel.load_into_model()
            return losses

        # The legacy evaluator's first flip_bit() ran load_into_model(),
        # resetting any float-weight divergence (a repair hook's clamp,
        # say) back to the dequantized payloads before measuring -- and
        # left the model in that state afterwards.  Replicate it once up
        # front; refresh() then rebuilds exactly the prefixes it moved.
        self.qmodel.load_into_model()
        self.refresh()
        per_term = [[0.0] * len(candidates) for _ in terms]
        groups: dict[int, list[int]] = {}
        for position, (name, _, _) in enumerate(candidates):
            groups.setdefault(self._top_index[name], []).append(position)
        net = self.model.net
        for term_pos, term in enumerate(terms):
            cache = self._cache_for(term.x)
            for k, positions in sorted(groups.items()):
                layer_input = cache.input_of(k)
                outs = []
                for position in positions:
                    name, index, bit = candidates[position]
                    self._apply_flip(name, index, bit)
                    try:
                        outs.append(net.layers[k].forward(layer_input))
                    finally:
                        self._apply_flip(name, index, bit)  # revert
                for position, logits in zip(
                    positions, self._suffix_logits(k + 1, outs)
                ):
                    per_term[term_pos][position] = cross_entropy(
                        logits, term.labels
                    )
        return [
            sum(
                term.weight * per_term[term_pos][position]
                for term_pos, term in enumerate(terms)
            )
            for position in range(len(candidates))
        ]

    # ------------------------------------------------------------------
    # Memoized probes
    # ------------------------------------------------------------------
    def probe(self, key: str, compute: Callable[[], Any]) -> Any:
        """Memoize ``compute()`` on the current weight-state digest.
        Callers guarantee one ``key`` always names the same computation
        over the same inputs."""
        if self.engine != "suffix":
            return compute()
        self.refresh()
        memo_key = (key, self._digest)
        if memo_key not in self._probes:
            self.stats.probe_misses += 1
            self._probes[memo_key] = compute()
        else:
            self.stats.probe_hits += 1
        return self._probes[memo_key]

    def accuracy(
        self, x: np.ndarray, labels: np.ndarray, key: str = "accuracy"
    ) -> float:
        """Digest-memoized ``model.accuracy`` over a fixed probe set."""
        return self.probe(key, lambda: self.model.accuracy(x, labels))

    def success_rate(
        self, x: np.ndarray, target: int, key: str = "asr"
    ) -> float:
        """Digest-memoized attack success rate: percent of ``x``
        classified as ``target``."""
        return self.probe(
            key,
            lambda: float(100.0 * (self.model.predict(x) == target).mean()),
        )
