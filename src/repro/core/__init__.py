"""The stable public API of the DRAM-Locker reproduction.

Everything a downstream user needs to protect a workload:

>>> from repro.core import (
...     DRAMConfig, DRAMDevice, MemoryController, DRAMLocker, LockerConfig,
... )
>>> device = DRAMDevice(DRAMConfig.small(), trh=1000)
>>> locker = DRAMLocker(device, LockerConfig())
>>> controller = MemoryController(device, locker=locker)
>>> plan = locker.protect([100, 101])     # lock the aggressor rows
>>> controller.hammer(plan.data_rows and 99).pop().blocked  # doctest: +SKIP

Subpackages expose the deeper layers (``repro.dram``, ``repro.locker``,
``repro.attacks``, ``repro.eval``, ...).
"""

from ..attacks import (
    BFAConfig,
    HammerDriver,
    PageTableAttack,
    PagedWeights,
    ProgressiveBitSearch,
    RandomAttack,
)
from ..circuits import MonteCarlo, copy_error_rate
from ..controller import Kind, MemRequest, MemoryController, Sequence
from ..defenses import (
    Defense,
    Graphene,
    Hydra,
    NoDefense,
    PARA,
    RRS,
    SRS,
    Shadow,
    TRR,
    TWiCE,
    format_table1,
)
from ..dram import DRAMConfig, DRAMDevice, VulnerabilityMap
from ..eval import Scale, build_system, build_victim
from ..locker import DRAMLocker, LockMode, LockTable, LockerConfig, plan_protection
from ..nn import (
    Model,
    QuantizedModel,
    WeightStore,
    resnet20,
    synthetic_cifar10,
    synthetic_cifar100,
    train,
    vgg11,
)
from ..vm import MMU, PageTable

__all__ = [
    "BFAConfig",
    "DRAMConfig",
    "DRAMDevice",
    "DRAMLocker",
    "Defense",
    "Graphene",
    "HammerDriver",
    "Hydra",
    "Kind",
    "LockMode",
    "LockTable",
    "LockerConfig",
    "MMU",
    "MemRequest",
    "MemoryController",
    "Model",
    "MonteCarlo",
    "NoDefense",
    "PARA",
    "PageTable",
    "PageTableAttack",
    "PagedWeights",
    "ProgressiveBitSearch",
    "QuantizedModel",
    "RRS",
    "RandomAttack",
    "SRS",
    "Scale",
    "Sequence",
    "Shadow",
    "TRR",
    "TWiCE",
    "VulnerabilityMap",
    "WeightStore",
    "build_system",
    "build_victim",
    "copy_error_rate",
    "format_table1",
    "plan_protection",
    "resnet20",
    "synthetic_cifar10",
    "synthetic_cifar100",
    "train",
    "vgg11",
]
