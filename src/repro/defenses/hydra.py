"""Hydra (Qureshi et al., ISCA 2022): hybrid two-level tracking.

A small SRAM table of *group* counters covers the whole row space; only
when a group's aggregate count crosses the group threshold does Hydra
fall back to exact *per-row* counters stored in DRAM (initialised
conservatively to the group count).  Row-counter accesses cost DRAM
bandwidth -- the price of ultra-low-threshold protection with tiny SRAM.
"""

from __future__ import annotations

from ..dram.config import DRAMConfig
from ..dram.stats import walk_add
from .base import KIB, Defense, DefenseAction, OverheadReport, RunAction

__all__ = ["Hydra"]


class Hydra(Defense):
    name = "Hydra"

    def __init__(
        self,
        group_size: int = 128,
        group_threshold: int | None = None,
        row_threshold: int | None = None,
    ):
        super().__init__()
        if group_size < 1:
            raise ValueError("group_size must be >= 1")
        self.group_size = group_size
        self.group_threshold = group_threshold
        self.row_threshold = row_threshold
        self._group_counts: dict[int, int] = {}
        self._row_counts: dict[int, int] = {}
        self._escalated: set[int] = set()
        self.row_counter_accesses = 0

    def attach(self, device) -> None:
        super().attach(device)
        trh = device.timing.trh
        if self.row_threshold is None:
            self.row_threshold = max(1, trh // 2)
        if self.group_threshold is None:
            self.group_threshold = max(1, self.row_threshold // 2)

    def on_activate(self, row: int, now_ns: float) -> DefenseAction:
        self._window_check()
        assert self.device is not None
        action = DefenseAction()
        group = row // self.group_size
        if group not in self._escalated:
            count = self._group_counts.get(group, 0) + 1
            self._group_counts[group] = count
            if count >= self.group_threshold:
                self._escalated.add(group)
        else:
            # Exact per-row counter in DRAM: charge one row cycle.
            self.row_counter_accesses += 1
            action.extra_ns += self.device.timing.trc
            count = self._row_counts.get(row, self.group_threshold) + 1
            self._row_counts[row] = count
            if count >= self.row_threshold:
                self._refresh_victims(row, action)
                self._row_counts[row] = 0
                action.note = "hydra-mitigation"
        return self._charge(action)

    def plan_activate_run(self, row: int, limit: int) -> RunAction | None:
        """Two uniform regimes: pre-escalation group-counter increments
        (free) and post-escalation exact row counters (one DRAM row
        cycle per ACT).  Group overflows and row-threshold crossings
        are scalar chunk boundaries."""
        self._window_check()
        assert self.device is not None
        assert self.group_threshold is not None
        assert self.row_threshold is not None
        group = row // self.group_size
        if group not in self._escalated:
            count = self._group_counts.get(group, 0)
            quiet = max(0, self.group_threshold - 1 - count)
            return RunAction(min(limit, quiet))
        count = self._row_counts.get(row, self.group_threshold)
        quiet = max(0, self.row_threshold - 1 - count)
        return RunAction(min(limit, quiet), extra_ns=self.device.timing.trc)

    def on_activate_run(
        self, row: int, count: int, now_ns: float, step_ns: float
    ) -> None:
        assert self.device is not None
        group = row // self.group_size
        if group not in self._escalated:
            self._group_counts[group] = (
                self._group_counts.get(group, 0) + count
            )
            return
        self.row_counter_accesses += count
        self._row_counts[row] = (
            self._row_counts.get(row, self.group_threshold) + count
        )
        # Scalar ``_charge`` adds trc and bumps ``actions`` per ACT.
        self.mitigation_ns_total = walk_add(
            self.mitigation_ns_total, self.device.timing.trc, count
        )
        self.actions += count

    def on_refresh_window(self) -> None:
        self._group_counts.clear()
        self._row_counts.clear()
        self._escalated.clear()

    def overhead(self, config: DRAMConfig) -> OverheadReport:
        """Table I row: 56 KB SRAM + 4 MB DRAM.

        The DRAM side is derivable: one byte-wide counter per row
        (4 Mi rows in the 32 GB configuration -> 4 MB).  The SRAM side
        is Hydra's published group-counter + row-counter-cache budget.
        """
        dram_bytes = config.total_rows * 1  # 1B exact counter per row
        return OverheadReport(
            framework="Hydra",
            involved_memory="SRAM-DRAM",
            capacity={"SRAM": 56 * KIB, "DRAM": dram_bytes},
            counters=1,
        )
