"""Table I: hardware overhead of RowHammer mitigation frameworks.

The paper standardizes every framework on one 32 GB / 16-bank DDR4
configuration and tabulates (i) the memory technologies involved,
(ii) capacity overhead and (iii) area overhead.  Each defense class
owns its row via :meth:`Defense.overhead`; this module assembles the
table in the paper's order and formats it the paper's way.

Where a row is cleanly derivable from the geometry (counter-per-row's
8 B/row, Hydra's 1 B/row DRAM side) the defense derives it; where the
paper carries a number over from the cited work verbatim, so do we --
each class's docstring says which.
"""

from __future__ import annotations

from ..dram.config import DRAMConfig
from .base import KIB, OverheadReport
from .counters import CounterPerRow, CounterTree
from .graphene import Graphene
from .hydra import Hydra
from .ppim import PPIM
from .rrs import RRS, SRS
from .shadow import Shadow
from .twice import TWiCE

__all__ = ["dram_locker_overhead", "table1_reports", "format_table1"]


def dram_locker_overhead(
    config: DRAMConfig, lock_table_bytes: int = 56 * KIB
) -> OverheadReport:
    """DRAM-Locker's Table I row, without instantiating a device.

    Identical to :meth:`repro.locker.DRAMLocker.overhead`; kept here so
    the overhead table can be produced from geometry alone.
    """
    return OverheadReport(
        framework="DRAM-Locker",
        involved_memory="DRAM-SRAM",
        capacity={"DRAM": 0, "SRAM": lock_table_bytes},
        area_pct=0.02,
    )


def table1_reports(config: DRAMConfig | None = None) -> list[OverheadReport]:
    """All Table I rows, in the paper's order."""
    config = config or DRAMConfig.ddr4_32gb()
    frameworks = [
        Graphene(),
        Hydra(),
        TWiCE(),
        CounterPerRow(),
        CounterTree(),
        RRS(),
        SRS(),
        Shadow(),
        PPIM(),
    ]
    reports = [framework.overhead(config) for framework in frameworks]
    reports.append(dram_locker_overhead(config))
    return reports


def format_table1(config: DRAMConfig | None = None) -> str:
    """Render Table I as aligned text."""
    reports = table1_reports(config)
    rows = [("Framework", "involved memory", "capacity overhead", "area overhead")]
    for report in reports:
        rows.append(
            (
                report.framework,
                report.involved_memory,
                report.capacity_text(),
                report.area_text(),
            )
        )
    widths = [max(len(row[i]) for row in rows) for i in range(4)]
    lines = []
    for index, row in enumerate(rows):
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        if index == 0:
            lines.append("-" * (sum(widths) + 6))
    return "\n".join(lines)
