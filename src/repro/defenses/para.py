"""PARA: Probabilistic Adjacent Row Activation (Kim et al., ISCA 2014).

Stateless victim-focused mitigation: on every activation, with a small
probability ``p``, refresh the activated row's neighbours.  Choosing
``p`` so that ``TRH`` activations almost surely include one mitigation
makes hammering statistically ineffective, at the cost of refresh
traffic proportional to the activation rate.

Bulk execution: numpy's ``Generator.random(n)`` produces the exact
draw sequence ``n`` scalar ``Generator.random()`` calls would (both
consume the bit generator identically; pinned by the equivalence
suite), so the planner vectorizes the lookahead -- draw a batch, find
the first sub-``p`` value, and run everything before it as one chunk.
Drawn-ahead values are buffered and consumed first by every later
draw, scalar or bulk, keeping the stream -- and hence every mitigation
decision -- bit-identical to the scalar loop.  The planner never looks
further ahead than the remaining ACTs of the current run, so the
buffer drains by the end of the run and the generator state matches
the scalar path's (the one exception: a DRAM-Locker deadline that
re-locks the row mid-run strands the tail of a lookahead in the
buffer; the stream, and therefore all outcomes, stay identical).
"""

from __future__ import annotations

import numpy as np

from ..dram.config import DRAMConfig
from .base import Defense, DefenseAction, OverheadReport, RunAction

__all__ = ["PARA"]


class PARA(Defense):
    name = "PARA"

    def __init__(self, probability: float = 0.001, seed: int = 0):
        super().__init__()
        if not 0.0 < probability <= 1.0:
            raise ValueError("probability must be in (0, 1]")
        self.probability = probability
        self.rng = np.random.default_rng(seed)
        self._pending = np.empty(0)
        self._cursor = 0

    def _next_draw(self) -> float:
        if self._cursor < self._pending.size:
            value = float(self._pending[self._cursor])
            self._cursor += 1
            return value
        return float(self.rng.random())

    def pending_draws(self) -> int:
        """Drawn-ahead values not yet consumed (0 outside bulk runs)."""
        return self._pending.size - self._cursor

    def on_activate(self, row: int, now_ns: float) -> DefenseAction:
        self._window_check()
        action = DefenseAction()
        if self._next_draw() < self.probability:
            self._refresh_victims(row, action)
            action.note = "para-refresh"
        return self._charge(action)

    def plan_activate_run(self, row: int, limit: int) -> RunAction | None:
        self._window_check()
        available = self._pending.size - self._cursor
        if available < limit:
            fresh = self.rng.random(limit - available)
            self._pending = np.concatenate(
                [self._pending[self._cursor :], fresh]
            )
            self._cursor = 0
        window = self._pending[self._cursor : self._cursor + limit]
        below = np.nonzero(window < self.probability)[0]
        quiet = int(below[0]) if below.size else limit
        return RunAction(quiet)

    def on_activate_run(
        self, row: int, count: int, now_ns: float, step_ns: float
    ) -> None:
        # Every planned draw was >= p: consume, nothing else happens.
        self._cursor += count

    def overhead(self, config: DRAMConfig) -> OverheadReport:
        """PARA stores nothing: one RNG and a comparator."""
        return OverheadReport(
            framework="PARA",
            involved_memory="-",
            capacity={},
            counters=0,
        )
