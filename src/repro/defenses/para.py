"""PARA: Probabilistic Adjacent Row Activation (Kim et al., ISCA 2014).

Stateless victim-focused mitigation: on every activation, with a small
probability ``p``, refresh the activated row's neighbours.  Choosing
``p`` so that ``TRH`` activations almost surely include one mitigation
makes hammering statistically ineffective, at the cost of refresh
traffic proportional to the activation rate.
"""

from __future__ import annotations

import numpy as np

from ..dram.config import DRAMConfig
from .base import Defense, DefenseAction, OverheadReport

__all__ = ["PARA"]


class PARA(Defense):
    name = "PARA"

    def __init__(self, probability: float = 0.001, seed: int = 0):
        super().__init__()
        if not 0.0 < probability <= 1.0:
            raise ValueError("probability must be in (0, 1]")
        self.probability = probability
        self.rng = np.random.default_rng(seed)

    def on_activate(self, row: int, now_ns: float) -> DefenseAction:
        self._window_check()
        action = DefenseAction()
        if self.rng.random() < self.probability:
            self._refresh_victims(row, action)
            action.note = "para-refresh"
        return self._charge(action)

    def overhead(self, config: DRAMConfig) -> OverheadReport:
        """PARA stores nothing: one RNG and a comparator."""
        return OverheadReport(
            framework="PARA",
            involved_memory="-",
            capacity={},
            counters=0,
        )
