"""Graphene (Park et al., MICRO 2020): Misra-Gries aggressor tracking.

Graphene keeps one Misra-Gries table per bank (row addresses in CAM,
counters in SRAM).  The MG guarantee -- an estimate never undercounts
by more than N/(k+1) -- lets a correctly-sized table *provably* catch
every row activated more than the threshold, at a fraction of
counter-per-row storage.  Mitigation is a victim refresh.
"""

from __future__ import annotations

from .. import obs
from ..dram.config import DRAMConfig
from .base import MIB, Defense, DefenseAction, OverheadReport, RunAction
from .trackers import MisraGries

__all__ = ["Graphene"]


class Graphene(Defense):
    name = "Graphene"

    def __init__(self, table_entries: int = 256, threshold: int | None = None):
        super().__init__()
        self.table_entries = table_entries
        self.threshold = threshold
        self._tables: dict[int, MisraGries] = {}

    def attach(self, device) -> None:
        super().attach(device)
        if self.threshold is None:
            # Mitigate at TRH/2 so double-sided pairs cannot slip through.
            self.threshold = max(1, device.timing.trh // 2)

    def on_activate(self, row: int, now_ns: float) -> DefenseAction:
        self._window_check()
        assert self.device is not None
        action = DefenseAction()
        bank = self.device.mapper.row_address(row).bank
        table = self._tables.get(bank)
        if table is None:
            table = MisraGries(self.table_entries)
            self._tables[bank] = table
        estimate = table.observe(row)
        if estimate >= self.threshold:
            self._refresh_victims(row, action)
            table.reset_item(row)
            action.note = "graphene-mitigation"
            tel = obs.ACTIVE
            if tel is not None:
                tel.metrics.inc("defense.graphene.mitigations")
        return self._charge(action)

    def plan_activate_run(self, row: int, limit: int) -> RunAction | None:
        """Quiet while the row's Misra-Gries counter just increments
        below the mitigation threshold; insertions, decrement-alls and
        threshold crossings are scalar chunk boundaries."""
        self._window_check()
        assert self.device is not None
        table = self._tables.get(self.device.mapper.row_address(row).bank)
        if table is None:
            return RunAction(0)
        assert self.threshold is not None
        return RunAction(min(limit, table.quiet_span(row, self.threshold)))

    def on_activate_run(
        self, row: int, count: int, now_ns: float, step_ns: float
    ) -> None:
        assert self.device is not None
        bank = self.device.mapper.row_address(row).bank
        self._tables[bank].absorb_run(row, count)

    def on_refresh_window(self) -> None:
        for table in self._tables.values():
            table.reset()

    def overhead(self, config: DRAMConfig) -> OverheadReport:
        """Table I row: 0.53 MB CAM + 1.12 MB SRAM, '1 counter' of area.

        The capacity numbers are the ones Graphene reports for a 16-bank
        DDR4 device at sub-1K thresholds; the paper's Table I carries
        them over verbatim, as do we.
        """
        return OverheadReport(
            framework="Graphene",
            involved_memory="CAM-SRAM",
            capacity={"CAM": 0.53 * MIB, "SRAM": 1.12 * MIB},
            counters=1,
        )
