"""Sparse row permutation used by swap/shuffle-based defenses.

Tracks where each logical row's data currently lives, as a minimal
dict-backed permutation (identity entries are absent).  RRS, SRS and
SHADOW all compose swaps onto one of these and expose it through
``Defense.translate``.
"""

from __future__ import annotations

__all__ = ["RowPermutation"]


class RowPermutation:
    """A permutation of row numbers, mutated by swapping locations."""

    def __init__(self) -> None:
        self._where: dict[int, int] = {}  # logical -> physical
        self._resident: dict[int, int] = {}  # physical -> logical

    def where(self, logical: int) -> int:
        """Physical location currently holding ``logical``'s data."""
        return self._where.get(logical, logical)

    def resident(self, physical: int) -> int:
        """Logical row whose data currently sits at ``physical``."""
        return self._resident.get(physical, physical)

    def swap_locations(self, physical_a: int, physical_b: int) -> None:
        """Record that the data at two physical locations was exchanged."""
        if physical_a == physical_b:
            return
        logical_a = self.resident(physical_a)
        logical_b = self.resident(physical_b)
        self._assign(logical_a, physical_b)
        self._assign(logical_b, physical_a)

    def moved_rows(self) -> int:
        """Number of logical rows currently away from home."""
        return len(self._where)

    def is_identity(self) -> bool:
        return not self._where

    def _assign(self, logical: int, physical: int) -> None:
        if logical == physical:
            self._where.pop(logical, None)
            self._resident.pop(physical, None)
        else:
            self._where[logical] = physical
            self._resident[physical] = logical
