"""Canonical defense-factory tables, shared across the stack.

These dicts used to live in ``eval/harness.py``; the serving facade
(`repro.serving.serve`) now needs them too, and importing the harness
from the serving package would be circular -- so the tables live here
and the harness re-exports the *same dict objects* (callers that
monkeypatch ``harness.DEFENDED_HAMMER_DEFENSES`` keep working).

Two tables, two operating points:

* ``DEFENSE_BUILDERS`` -- tuned for the TRH=400 per-ACT campaign of
  ``_run_defense_campaign`` / ``examples/compare_defenses.py``.
* ``DEFENDED_HAMMER_DEFENSES`` -- thresholds left unset so each
  defense derives its operating point from the device's TRH at attach
  time (the defended-hammer workload and the serving matrix).

``"DRAM-Locker"`` maps to ``None`` in both: the locker is not a
``Defense`` instance, it is installed through the controller's locker
slot, which :func:`resolve_serving_defense` encodes.
"""

from __future__ import annotations

from typing import Any, Callable

from .base import NoDefense
from .counters import CounterPerRow, CounterTree
from .dnn_defender import DNNDefender
from .graphene import Graphene
from .hydra import Hydra
from .para import PARA
from .radar import Radar
from .rrs import RRS, SRS
from .shadow import Shadow
from .trr import TRR
from .twice import TWiCE

__all__ = [
    "DEFENSE_BUILDERS",
    "DEFENDED_HAMMER_DEFENSES",
    "resolve_serving_defense",
]

#: Baseline-defense factories for the TRH=400 per-ACT campaign.
DEFENSE_BUILDERS: dict[str, Callable[[], Any] | None] = {
    "None": lambda: NoDefense(),
    "PARA": lambda: PARA(probability=0.05),
    "TRR": lambda: TRR(table_entries=16),
    "Graphene": lambda: Graphene(table_entries=64),
    "Hydra": lambda: Hydra(group_size=16),
    "TWiCE": lambda: TWiCE(),
    "Counter/Row": lambda: CounterPerRow(),
    "CounterTree": lambda: CounterTree(split_threshold=8),
    "RRS": lambda: RRS(seed=1),
    "SRS": lambda: SRS(seed=1),
    "SHADOW": lambda: Shadow(shuffle_period=100, seed=1),
    "RADAR": lambda: Radar(scrub_interval=200),
    "DNN-Defender": lambda: DNNDefender(hot_threshold=100, seed=1),
    "DRAM-Locker": None,  # handled via the locker, not a Defense
}

#: Defense factories for the defended-hammer workload and the serving
#: matrix: thresholds unset, derived from the device TRH at attach
#: time; PARA at its published ~1/TRH probability.
DEFENDED_HAMMER_DEFENSES: dict[str, Callable[[], Any] | None] = {
    "None": lambda: NoDefense(),
    "PARA": lambda: PARA(probability=0.001),
    "TRR": lambda: TRR(table_entries=16),
    "Graphene": lambda: Graphene(table_entries=64),
    "Hydra": lambda: Hydra(group_size=16),
    "TWiCE": lambda: TWiCE(),
    "Counter/Row": lambda: CounterPerRow(),
    "CounterTree": lambda: CounterTree(),
    "RRS": lambda: RRS(seed=1),
    "SRS": lambda: SRS(seed=1),
    "SHADOW": lambda: Shadow(shuffle_period=1000, seed=1),
    "RADAR": lambda: Radar(),
    "DNN-Defender": lambda: DNNDefender(seed=1),
    "DRAM-Locker": None,  # handled via the locker, not a Defense
}


def resolve_serving_defense(
    name: str,
) -> tuple[bool, Callable[[], Any] | None]:
    """Resolve a serving defense name to ``(protected, builder)``.

    ``protected`` says whether per-channel DRAM-Lockers are installed;
    ``builder`` is the per-channel baseline-defense factory (or
    ``None``).  ``"DRAM-Locker"`` -> lockers, no baseline;
    ``"None"`` -> neither; any other name looks up
    :data:`DEFENDED_HAMMER_DEFENSES` (the serving operating point).
    """
    if name == "DRAM-Locker":
        return True, None
    if name == "None":
        return False, None
    builder = DEFENDED_HAMMER_DEFENSES.get(name)
    if builder is None:
        raise ValueError(f"unknown serving defense {name!r}")
    return False, builder
