"""RowHammer mitigation baselines and the Table I overhead model."""

from .base import Defense, DefenseAction, NoDefense, OverheadReport, RunAction
from .counters import CounterPerRow, CounterTree
from .dnn_defender import DNNDefender
from .graphene import Graphene
from .hydra import Hydra
from .para import PARA
from .permutation import RowPermutation
from .ppim import PPIM
from .radar import Radar, RadarGroup
from .rrs import RRS, SRS
from .shadow import Shadow
from .trackers import MisraGries
from .trr import TRR
from .twice import TWiCE
from .overhead import dram_locker_overhead, format_table1, table1_reports
from .builders import (
    DEFENSE_BUILDERS,
    DEFENDED_HAMMER_DEFENSES,
    resolve_serving_defense,
)

__all__ = [
    "CounterPerRow",
    "DEFENSE_BUILDERS",
    "DEFENDED_HAMMER_DEFENSES",
    "resolve_serving_defense",
    "CounterTree",
    "DNNDefender",
    "Defense",
    "DefenseAction",
    "Graphene",
    "Hydra",
    "MisraGries",
    "NoDefense",
    "OverheadReport",
    "PARA",
    "PPIM",
    "RRS",
    "Radar",
    "RadarGroup",
    "RowPermutation",
    "RunAction",
    "SRS",
    "Shadow",
    "TRR",
    "TWiCE",
    "dram_locker_overhead",
    "format_table1",
    "table1_reports",
]
