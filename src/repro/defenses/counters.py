"""Exact-counter defenses: counter-per-row and the counter tree.

*Counter per Row* keeps one exact activation counter per DRAM row (in
DRAM); it never misses an aggressor but costs the most storage in
Table I (32 MB for the 32 GB configuration).

*Counter Tree* (Seyedzadeh et al., IEEE CAL 2016) shares counters
hierarchically: the row space starts under one root counter, and any
counter that crosses the split threshold is subdivided, so counters
concentrate where the activity is.  Mitigation triggers when a
fine-grained node crosses the mitigation threshold.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..dram.config import DRAMConfig
from .base import MIB, Defense, DefenseAction, OverheadReport, RunAction

__all__ = ["CounterPerRow", "CounterTree"]


class CounterPerRow(Defense):
    name = "Counter per Row"

    def __init__(self, threshold: int | None = None):
        super().__init__()
        self.threshold = threshold
        self._counts: dict[int, int] = {}

    def attach(self, device) -> None:
        super().attach(device)
        if self.threshold is None:
            self.threshold = max(1, device.timing.trh // 2)

    def on_activate(self, row: int, now_ns: float) -> DefenseAction:
        self._window_check()
        action = DefenseAction()
        self._counts[row] = self._counts.get(row, 0) + 1
        if self._counts[row] >= self.threshold:
            self._refresh_victims(row, action)
            self._counts[row] = 0
            action.note = "cpr-mitigation"
        return self._charge(action)

    def plan_activate_run(self, row: int, limit: int) -> RunAction | None:
        self._window_check()
        assert self.threshold is not None
        count = self._counts.get(row, 0)
        return RunAction(max(0, min(limit, self.threshold - 1 - count)))

    def on_activate_run(
        self, row: int, count: int, now_ns: float, step_ns: float
    ) -> None:
        self._counts[row] = self._counts.get(row, 0) + count

    def on_refresh_window(self) -> None:
        self._counts.clear()

    def count(self, row: int) -> int:
        return self._counts.get(row, 0)

    def overhead(self, config: DRAMConfig) -> OverheadReport:
        """8 B of DRAM counter storage per row; the per-bank counter
        logic the paper's Table I reports as 16 384 counters."""
        dram_bytes = config.total_rows * 8
        return OverheadReport(
            framework="Counter per Row",
            involved_memory="DRAM",
            capacity={"DRAM": dram_bytes},
            counters=16_384,
        )


@dataclass
class _Node:
    """One counter node covering rows [start, start + span)."""

    start: int
    span: int
    count: int = 0
    split: bool = False


class CounterTree(Defense):
    name = "Counter Tree"

    def __init__(
        self,
        split_threshold: int | None = None,
        mitigation_threshold: int | None = None,
        min_span: int = 1,
    ):
        super().__init__()
        self.split_threshold = split_threshold
        self.mitigation_threshold = mitigation_threshold
        self.min_span = max(1, min_span)
        self._nodes: dict[tuple[int, int], _Node] = {}
        self.splits = 0

    def attach(self, device) -> None:
        super().attach(device)
        trh = device.timing.trh
        if self.mitigation_threshold is None:
            self.mitigation_threshold = max(1, trh // 2)
        if self.split_threshold is None:
            self.split_threshold = max(1, self.mitigation_threshold // 4)
        total = device.config.total_rows
        self._root_key = (0, total)
        self._nodes.setdefault(self._root_key, _Node(0, total))

    def on_activate(self, row: int, now_ns: float) -> DefenseAction:
        self._window_check()
        action = DefenseAction()
        node = self._descend(row)
        node.count += 1
        if node.span > self.min_span and node.count >= self.split_threshold:
            self._split(node)
        elif node.span <= self.min_span and node.count >= self.mitigation_threshold:
            self._refresh_victims(row, action)
            node.count = 0
            action.note = "counter-tree-mitigation"
        return self._charge(action)

    def plan_activate_run(self, row: int, limit: int) -> RunAction | None:
        """Quiet while the row's leaf counter increments below its next
        event: a split for coarse nodes, a mitigation for leaf-span
        nodes.  Splits and mitigations run scalar."""
        self._window_check()
        assert self.split_threshold is not None
        assert self.mitigation_threshold is not None
        node = self._descend(row)
        if node.span > self.min_span:
            quiet = self.split_threshold - 1 - node.count
        else:
            quiet = self.mitigation_threshold - 1 - node.count
        return RunAction(max(0, min(limit, quiet)))

    def on_activate_run(
        self, row: int, count: int, now_ns: float, step_ns: float
    ) -> None:
        self._descend(row).count += count

    def _descend(self, row: int) -> _Node:
        node = self._nodes[self._root_key]
        while node.split:
            half = node.span // 2
            if row < node.start + half:
                key = (node.start, half)
            else:
                key = (node.start + half, node.span - half)
            child = self._nodes.get(key)
            if child is None:
                child = _Node(key[0], key[1])
                self._nodes[key] = child
            node = child
        return node

    def _split(self, node: _Node) -> None:
        node.split = True
        node.count = 0
        self.splits += 1
        # Materialize both children: the hardware allocates the pair.
        half = node.span // 2
        for key in ((node.start, half), (node.start + half, node.span - half)):
            self._nodes.setdefault(key, _Node(*key))

    def live_counters(self) -> int:
        """Counters currently materialized (the tree's storage bound)."""
        return sum(1 for node in self._nodes.values() if not node.split)

    def on_refresh_window(self) -> None:
        self._nodes = {self._root_key: _Node(*self._root_key)}
        self.splits = 0

    def overhead(self, config: DRAMConfig) -> OverheadReport:
        """Table I row: 2 MB of DRAM-resident counters, 1 024 counter
        units of logic (the tree's maximum live width per device)."""
        return OverheadReport(
            framework="Counter Tree",
            involved_memory="DRAM",
            capacity={"DRAM": 2 * MIB},
            counters=1_024,
        )
