"""RADAR (Li et al., arXiv:2101.08254): run-time checksum detection
and accuracy recovery for DNN weights.

Where DRAM-Locker *prevents* disturbance flips, RADAR lets them land
and *recovers*: weight rows are partitioned into checksum groups whose
blake2 digests are computed once at victim-load time
(:meth:`Radar.bind_store`).  At run time two detection paths share one
recovery routine:

* **inference reads** -- every ACT of a protected row re-verifies its
  group digest (the checksum streams alongside the data, charged as
  ``check_ns`` per access);
* **scrub pass** -- every ``scrub_interval`` activations (any row) a
  full sweep re-verifies every group.  The scrub is *scheduled through
  the events engine*: :meth:`Radar.next_act_event` declares the quiet
  span until the next scrub boundary in closed form, so fused epochs
  leap straight to the scrub ACT.

Recovery is two-level.  Groups inside the golden budget keep exact
row copies ("locatable"): corrupted rows are restored bit-exactly.
Groups beyond the budget carry only the digest: corruption is detected
but not locatable, and the whole group is zeroed -- zero weights
degrade accuracy gracefully instead of silently misclassifying
(RADAR's accuracy-recovery argument).

Engine equivalence: RADAR performs no refresh-window-scoped work, so
its event stream may fuse across refresh ticks.  Row content only
changes on TRH-crossing ACTs and locker deadlines, both of which every
engine forces onto the scalar path -- therefore a digest verified at
plan time stays valid for the whole planned run, and the hook triple is
bit-identical across scalar/bulk/events (pinned by
``tests/test_engine_equivalence.py``).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

from .. import obs
from ..dram.config import DRAMConfig
from ..dram.stats import walk_add
from .base import KIB, Defense, DefenseAction, OverheadReport, RunAction

__all__ = ["Radar", "RadarGroup"]

#: blake2b digest width for group checksums (bytes).
DIGEST_SIZE = 16


@dataclass
class RadarGroup:
    """One checksum group: a handful of weight rows under one digest."""

    index: int
    rows: tuple[int, ...]
    locatable: bool
    digest: bytes = b""
    golden: dict[int, np.ndarray] = field(default_factory=dict)


class Radar(Defense):
    name = "RADAR"

    def __init__(
        self,
        scrub_interval: int | None = None,
        group_rows: int = 4,
        check_ns: float | None = None,
        scrub_ns_per_group: float | None = None,
        restore_ns_per_row: float | None = None,
    ):
        super().__init__()
        if scrub_interval is not None and scrub_interval < 1:
            raise ValueError("scrub_interval must be >= 1")
        if group_rows < 1:
            raise ValueError("group_rows must be >= 1")
        self.scrub_interval = scrub_interval
        self.group_rows = group_rows
        self.check_ns = check_ns
        self.scrub_ns_per_group = scrub_ns_per_group
        self.restore_ns_per_row = restore_ns_per_row
        self.store = None
        self._groups: list[RadarGroup] = []
        self._row_group: dict[int, RadarGroup] = {}
        self._acts = 0
        self.read_checks = 0
        self.scrubs = 0
        self.corruptions_detected = 0
        self.rows_restored = 0
        self.rows_zeroed = 0
        self.last_detection_ns: float | None = None
        self.detection_log: list[dict] = []

    def attach(self, device) -> None:
        super().attach(device)
        timing = device.timing
        if self.scrub_interval is None:
            self.scrub_interval = max(1, timing.trh // 2)
        if self.check_ns is None:
            self.check_ns = timing.trc
        if self.scrub_ns_per_group is None:
            self.scrub_ns_per_group = timing.trc
        if self.restore_ns_per_row is None:
            self.restore_ns_per_row = timing.rowclone_ns

    # ------------------------------------------------------------------
    # Victim-load-time binding
    # ------------------------------------------------------------------
    def bind_store(self, store, *, golden_limit: int | None = None) -> int:
        """Compute group checksums over ``store``'s weight rows.

        ``golden_limit`` caps how many rows keep exact golden copies
        (``None``: all of them).  Groups that fit the budget become
        *locatable* (exact restore); the rest carry only the digest and
        fall back to zero-out recovery.  Returns the group count.
        """
        assert self.device is not None, "defense not attached"
        rows = [int(row) for row in store.data_rows]
        self.store = store
        self._groups = []
        self._row_group = {}
        budget = len(rows) if golden_limit is None else golden_limit
        taken = 0
        for start in range(0, len(rows), self.group_rows):
            members = tuple(rows[start : start + self.group_rows])
            locatable = taken + len(members) <= budget
            golden: dict[int, np.ndarray] = {}
            if locatable:
                for row in members:
                    golden[row] = self.device.peek_row(row).copy()
                taken += len(members)
            group = RadarGroup(
                index=len(self._groups),
                rows=members,
                locatable=locatable,
                golden=golden,
            )
            group.digest = self._group_digest(members)
            self._groups.append(group)
            for row in members:
                self._row_group[row] = group
        return len(self._groups)

    @property
    def groups(self) -> tuple[RadarGroup, ...]:
        return tuple(self._groups)

    def _group_digest(self, rows: tuple[int, ...]) -> bytes:
        assert self.device is not None
        digest = hashlib.blake2b(digest_size=DIGEST_SIZE)
        for row in rows:
            digest.update(self.device.peek_row(row, copy=False).tobytes())
        return digest.digest()

    # ------------------------------------------------------------------
    # Scalar hook
    # ------------------------------------------------------------------
    def on_activate(self, row: int, now_ns: float) -> DefenseAction:
        assert self.scrub_interval is not None
        action = DefenseAction()
        self._acts += 1
        group = self._row_group.get(row)
        if group is not None:
            # Detection on inference reads: the checksum streams with
            # the data on every access to a protected row.
            self.read_checks += 1
            tel = obs.ACTIVE
            if tel is not None:
                tel.metrics.inc("defense.radar.read_checks")
            action.extra_ns += self.check_ns
            if self._group_digest(group.rows) != group.digest:
                self._recover(group, action, now_ns, via="read")
        if self._acts % self.scrub_interval == 0:
            self._scrub_groups(action, now_ns, via="scrub")
        return self._charge(action)

    def _scrub_groups(
        self, action: DefenseAction, now_ns: float, via: str
    ) -> None:
        self.scrubs += 1
        tel = obs.ACTIVE
        if tel is not None:
            tel.metrics.inc("defense.radar.scrubs", via=via)
        for group in self._groups:
            action.extra_ns += self.scrub_ns_per_group
            if self._group_digest(group.rows) != group.digest:
                self._recover(group, action, now_ns, via=via)
        if self._groups and not action.note:
            action.note = "radar-scrub"

    def _recover(
        self, group: RadarGroup, action: DefenseAction, now_ns: float, via: str
    ) -> None:
        assert self.device is not None
        device = self.device
        self.corruptions_detected += 1
        self.last_detection_ns = now_ns
        if group.locatable:
            for row in group.rows:
                golden = group.golden[row]
                if not np.array_equal(
                    device.peek_row(row, copy=False), golden
                ):
                    device.poke_row(row, golden.copy())
                    self.rows_restored += 1
                    action.extra_ns += self.restore_ns_per_row
            mode = "restore"
        else:
            zeros = np.zeros(device.config.row_bytes, dtype=np.uint8)
            for row in group.rows:
                device.poke_row(row, zeros)
                self.rows_zeroed += 1
                action.extra_ns += self.restore_ns_per_row
            mode = "zero"
        group.digest = self._group_digest(group.rows)
        action.note = f"radar-{mode}"
        tel = obs.ACTIVE
        if tel is not None:
            tel.metrics.inc("defense.radar.detections", mode=mode)
            tel.metrics.set("defense.radar.rows_restored", self.rows_restored)
            tel.metrics.set("defense.radar.rows_zeroed", self.rows_zeroed)
            tel.audit.emit(
                "radar-recovery",
                now_ns=now_ns,
                group=group.index,
                via=via,
                mode=mode,
            )
        self.detection_log.append(
            {
                "now_ns": now_ns,
                "group": group.index,
                "via": via,
                "mode": mode,
            }
        )
        if self.store is not None:
            # Pull the repaired bytes back into the model tensors so
            # the next inference runs on the recovered weights.
            self.store.sync_model(force=True)

    # ------------------------------------------------------------------
    # Bulk hook pair + events declaration
    # ------------------------------------------------------------------
    def plan_activate_run(self, row: int, limit: int) -> RunAction | None:
        """Quiet until the next scrub boundary; protected rows charge
        ``check_ns`` per ACT (the streamed checksum) and break
        immediately when their group digest already mismatches."""
        assert self.scrub_interval is not None
        quiet = self.scrub_interval - 1 - (self._acts % self.scrub_interval)
        group = self._row_group.get(row)
        if group is None:
            return RunAction(max(0, min(limit, quiet)))
        if self._group_digest(group.rows) != group.digest:
            return RunAction(0)
        return RunAction(
            max(0, min(limit, quiet)), extra_ns=self.check_ns
        )

    def on_activate_run(
        self, row: int, count: int, now_ns: float, step_ns: float
    ) -> None:
        self._acts += count
        group = self._row_group.get(row)
        if group is not None:
            self.read_checks += count
            tel = obs.ACTIVE
            if tel is not None:
                tel.metrics.inc("defense.radar.read_checks", count)
            # Scalar ``_charge`` adds check_ns and bumps ``actions``
            # once per ACT.
            self.mitigation_ns_total = walk_add(
                self.mitigation_ns_total, self.check_ns, count
            )
            self.actions += count

    def next_act_event(self, row: int, limit: int) -> RunAction | None:
        # No refresh-window-scoped work and row content is frozen
        # between scalar boundaries (TRH crossings / locker deadlines),
        # so the plan may fuse across refresh ticks: the scrub pass is
        # scheduled through the events engine in closed form.
        return self.plan_activate_run(row, limit)

    def refresh_checksums(self) -> None:
        """Re-snapshot every group digest (and golden copy) from the
        current row content -- for out-of-band weight rewrites such as
        the serving health monitor's golden-restore path, which would
        otherwise leave the digests pointing at the pre-restore bytes.
        """
        assert self.device is not None, "defense not attached"
        for group in self._groups:
            if group.locatable:
                for row in group.rows:
                    group.golden[row] = self.device.peek_row(row).copy()
            group.digest = self._group_digest(group.rows)

    # ------------------------------------------------------------------
    # Out-of-band scrub (the serving health monitor's probe path)
    # ------------------------------------------------------------------
    def scrub_now(self, now_ns: float | None = None) -> int:
        """Run one scrub pass outside the ACT stream.

        Detection/recovery latency is charged through the same
        defense-ns accounting.  Returns how many corrupted groups were
        detected (and recovered) by this pass.
        """
        assert self.device is not None, "defense not attached"
        if now_ns is None:
            now_ns = self.device.now_ns
        before = self.corruptions_detected
        action = DefenseAction()
        self._scrub_groups(action, now_ns, via="probe")
        self._charge(action)
        return self.corruptions_detected - before

    def overhead(self, config: DRAMConfig) -> OverheadReport:
        """Checksum store in SRAM, golden copies in reserved DRAM."""
        groups = max(1, len(self._groups))
        golden_rows = sum(
            len(group.rows) for group in self._groups if group.locatable
        )
        return OverheadReport(
            framework="RADAR",
            involved_memory="SRAM-DRAM",
            capacity={
                "SRAM": max(2 * KIB, groups * DIGEST_SIZE),
                "DRAM": golden_rows * config.row_bytes,
            },
            counters=1,
        )
