"""DNN-Defender (Zhou et al., arXiv:2305.08034): priority-ranked
victim-row in-DRAM swap inside refresh windows.

DNN-Defender protects DNN weight rows *victim-first*: instead of
tracking aggressors precisely, it watches per-row activation pressure
within each refresh window and, when a row turns hot, swaps the most
valuable threatened *victim* (ranked by registered priority -- weight
rows first -- then by address) away from the aggressor's neighborhood.
The swap is three in-DRAM RowClones through the subarray's reserved
buffer row, composed onto a :class:`RowPermutation` the controller
follows, so both the protection and its latency cost are emergent in
simulation.  A per-window swap budget models the paper's constraint
that swaps must fit inside refresh windows.

Window-scoped state means the defense does *not* declare
:meth:`~repro.defenses.base.Defense.next_act_event`: the events engine
keeps the chunked bulk discipline (scalar boundary at every refresh
tick), which is bit-identical by the existing bulk contract.
"""

from __future__ import annotations

import numpy as np

from .. import obs
from ..dram.config import DRAMConfig
from .base import Defense, DefenseAction, OverheadReport, RunAction
from .permutation import RowPermutation

__all__ = ["DNNDefender"]


class DNNDefender(Defense):
    name = "DNN-Defender"

    def __init__(
        self,
        swaps_per_window: int = 4,
        hot_threshold: int | None = None,
        seed: int = 0,
    ):
        super().__init__()
        if swaps_per_window < 1:
            raise ValueError("swaps_per_window must be >= 1")
        if hot_threshold is not None and hot_threshold < 1:
            raise ValueError("hot_threshold must be >= 1")
        self.swaps_per_window = swaps_per_window
        self.hot_threshold = hot_threshold
        self.rng = np.random.default_rng(seed)
        self.permutation = RowPermutation()
        self._counts: dict[int, int] = {}
        self._priority: dict[int, int] = {}
        self._window_swaps = 0
        self.swaps_performed = 0

    def attach(self, device) -> None:
        super().attach(device)
        if self.hot_threshold is None:
            self.hot_threshold = max(2, device.timing.trh // 4)

    def prioritize(self, rows) -> None:
        """Register victim rows to protect first, most critical first.

        The serving layer passes the model's weight rows here at
        victim-load time; unranked rows default to priority 0 and are
        only swapped when no ranked victim is threatened.
        """
        rows = [int(row) for row in rows]
        for rank, row in enumerate(rows):
            self._priority[row] = len(rows) - rank

    def translate(self, row: int) -> int:
        return self.permutation.where(row)

    def on_activate(self, row: int, now_ns: float) -> DefenseAction:
        self._window_check()
        assert self.device is not None
        assert self.hot_threshold is not None
        action = DefenseAction()
        count = self._counts.get(row, 0) + 1
        if (
            count >= self.hot_threshold
            and self._window_swaps < self.swaps_per_window
        ):
            count = 0
            self._defend(row, action)
        self._counts[row] = count
        return self._charge(action)

    def plan_activate_run(self, row: int, limit: int) -> RunAction | None:
        """Quiet while the row's window count stays below the hot
        threshold; the swapping ACT itself runs scalar.  With the
        window's swap budget exhausted, counting is the only effect
        left and the whole horizon is uniform."""
        self._window_check()
        assert self.hot_threshold is not None
        if self._window_swaps >= self.swaps_per_window:
            return RunAction(limit)
        count = self._counts.get(row, 0)
        return RunAction(max(0, min(limit, self.hot_threshold - 1 - count)))

    def on_activate_run(
        self, row: int, count: int, now_ns: float, step_ns: float
    ) -> None:
        self._counts[row] = self._counts.get(row, 0) + count

    def on_refresh_window(self) -> None:
        self._counts.clear()
        self._window_swaps = 0

    def _defend(self, row: int, action: DefenseAction) -> None:
        assert self.device is not None
        device = self.device
        mapper = device.mapper
        victims = mapper.neighbors(row, radius=1)
        if not victims:
            return
        # Priority rank: the most valuable resident data first (the
        # permutation tracks where registered rows currently live),
        # ties broken by lower address.
        victim = max(
            victims,
            key=lambda v: (
                self._priority.get(self.permutation.resident(v), 0),
                -v,
            ),
        )
        if (
            self._priority
            and self._priority.get(self.permutation.resident(victim), 0) == 0
        ):
            # Victim-focused: with a priority ranking registered, the
            # per-window swap budget is spent only on ranked victims --
            # relocating sacrificial data would burn the budget the
            # next threatened weight row needs.
            return
        addr = mapper.row_address(victim)
        reserved = mapper.reserved_rows(addr.bank, addr.subarray)
        buffer_row = next((r for r in reserved if r != victim), None)
        if buffer_row is None:
            return
        usable = device.config.usable_rows_per_subarray
        # The swap partner takes the victim's place in the hammer zone,
        # so it must be sacrificial: sample for a priority-0 resident
        # (bounded tries keep the RNG stream deterministic) and give up
        # on this window's swap rather than relocate ranked data into
        # the line of fire.
        partner = None
        for _ in range(16):
            local = int(self.rng.integers(usable))
            candidate = mapper.row_index((addr.bank, addr.subarray, local))
            if candidate in (victim, row):
                continue
            resident = self.permutation.resident(candidate)
            if self._priority.get(resident, 0) == 0:
                partner = candidate
                break
        if partner is None:
            return
        for src, dst in (
            (victim, buffer_row),
            (partner, victim),
            (buffer_row, partner),
        ):
            device.rowclone(src, dst)
        self.permutation.swap_locations(victim, partner)
        self._window_swaps += 1
        self.swaps_performed += 1
        tel = obs.ACTIVE
        if tel is not None:
            tel.metrics.inc("defense.dnn_defender.swaps")
            tel.audit.emit(
                "dnn-defender-swap",
                now_ns=device.now_ns,
                aggressor=row,
                victim=victim,
                partner=partner,
            )
        action.extra_ns += 3 * device.timing.rowclone_ns
        action.moved_rows += 2
        action.note = "dnn-defender-swap"

    def overhead(self, config: DRAMConfig) -> OverheadReport:
        """In-DRAM mechanism: swap scratch rides the reserved swap-pool
        rows (one buffer row per subarray), plus the window counters."""
        subarrays = config.total_rows // config.rows_per_subarray
        return OverheadReport(
            framework="DNN-Defender",
            involved_memory="DRAM",
            capacity={"DRAM": subarrays * config.row_bytes},
            area_pct=0.4,
        )
