"""SHADOW (Wi et al., HPCA 2023): intra-subarray row shuffling.

SHADOW is counter-light: instead of identifying aggressors precisely,
it periodically *shuffles* activated rows with random rows of the same
subarray ("unintelligent swap operations on all potential target
rows"), so an attacker can never keep hammering a row that stays
adjacent to its intended victim.  The paper's Figs. 7(a)/(b) compare
DRAM-Locker against SHADOW at thresholds 1k/2k/4k/8k: the threshold is
the shuffle period in activations -- smaller periods shuffle more and
cost more latency.

The shuffle moves real data (three RowClones through the reserved
buffer row) and composes onto a permutation the controller follows, so
its protection *and* its cost are emergent in simulation.
"""

from __future__ import annotations

import numpy as np

from ..dram.config import DRAMConfig
from .base import Defense, DefenseAction, OverheadReport, RunAction
from .permutation import RowPermutation

__all__ = ["Shadow"]


class Shadow(Defense):
    name = "SHADOW"

    def __init__(self, shuffle_period: int = 1000, seed: int = 0):
        super().__init__()
        if shuffle_period < 1:
            raise ValueError("shuffle_period must be >= 1")
        self.shuffle_period = shuffle_period
        self.rng = np.random.default_rng(seed)
        self.permutation = RowPermutation()
        self._subarray_acts: dict[tuple[int, int], int] = {}
        self.shuffles_performed = 0

    def translate(self, row: int) -> int:
        return self.permutation.where(row)

    def on_activate(self, row: int, now_ns: float) -> DefenseAction:
        self._window_check()
        assert self.device is not None
        action = DefenseAction()
        addr = self.device.mapper.row_address(row)
        key = (addr.bank, addr.subarray)
        count = self._subarray_acts.get(key, 0) + 1
        if count >= self.shuffle_period:
            count = 0
            self._shuffle(row, action)
        self._subarray_acts[key] = count
        return self._charge(action)

    def plan_activate_run(self, row: int, limit: int) -> RunAction | None:
        """Quiet while the subarray's activation count stays below the
        shuffle period; the shuffling ACT itself (data moves, the
        permutation re-routes ``translate``) runs scalar."""
        self._window_check()
        assert self.device is not None
        addr = self.device.mapper.row_address(row)
        count = self._subarray_acts.get((addr.bank, addr.subarray), 0)
        return RunAction(max(0, min(limit, self.shuffle_period - 1 - count)))

    def on_activate_run(
        self, row: int, count: int, now_ns: float, step_ns: float
    ) -> None:
        assert self.device is not None
        addr = self.device.mapper.row_address(row)
        key = (addr.bank, addr.subarray)
        self._subarray_acts[key] = self._subarray_acts.get(key, 0) + count

    def _shuffle(self, row: int, action: DefenseAction) -> None:
        assert self.device is not None
        device = self.device
        mapper = device.mapper
        addr = mapper.row_address(row)
        reserved = mapper.reserved_rows(addr.bank, addr.subarray)
        buffer_row = reserved[0]
        usable = device.config.usable_rows_per_subarray
        while True:
            local = int(self.rng.integers(usable))
            partner = mapper.row_index((addr.bank, addr.subarray, local))
            if partner != row:
                break
        for src, dst in ((row, buffer_row), (partner, row), (buffer_row, partner)):
            device.rowclone(src, dst)
        self.permutation.swap_locations(row, partner)
        self.shuffles_performed += 1
        action.extra_ns += 3 * device.timing.rowclone_ns
        action.moved_rows += 2
        action.note = "shadow-shuffle"

    def overhead(self, config: DRAMConfig) -> OverheadReport:
        """Table I row: 0.16 MB of DRAM (shuffle scratch + per-subarray
        state), 0.6 % die area for the shuffle sequencing logic."""
        return OverheadReport(
            framework="SHADOW",
            involved_memory="DRAM",
            capacity={"DRAM": 0.16 * 1024 * 1024},
            area_pct=0.6,
        )
