"""P-PIM (Zhou et al., DATE 2023): processing-in-DRAM RowHammer
protection.

P-PIM appears in Table I as an overhead comparison point; its
protection path (LUT-based in-DRAM self-tracking) is orthogonal to the
mechanisms this reproduction exercises behaviourally, so the class
carries the published overhead row and otherwise acts as a no-op.
"""

from __future__ import annotations

from ..dram.config import DRAMConfig
from .base import MIB, Defense, OverheadReport, RunAction

__all__ = ["PPIM"]


class PPIM(Defense):
    name = "P-PIM"

    def plan_activate_run(self, row: int, limit: int) -> RunAction | None:
        # Behavioural no-op (like the base on_activate): whole runs are
        # uniform and commit nothing.
        return RunAction(limit)

    def on_activate_run(
        self, row: int, count: int, now_ns: float, step_ns: float
    ) -> None:
        pass

    def overhead(self, config: DRAMConfig) -> OverheadReport:
        """Table I row: 4.125 MB DRAM, 0.34 % area."""
        return OverheadReport(
            framework="P-PIM",
            involved_memory="DRAM",
            capacity={"DRAM": 4.125 * MIB},
            area_pct=0.34,
        )
