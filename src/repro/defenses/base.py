"""Common interface for RowHammer mitigation mechanisms.

Every defense -- the baselines and DRAM-Locker itself -- plugs into the
memory controller through the same three hooks:

* :meth:`Defense.translate` -- address indirection (swap/shuffle-based
  mechanisms relocate rows and the controller must follow);
* :meth:`Defense.on_activate` -- called for every ACT the controller
  issues; the defense may charge mitigation latency, perform victim
  refreshes, or trigger its own row moves;
* :meth:`Defense.overhead` -- the storage/area accounting behind
  Table I.

The **bulk hook pair** lets the batched engine run defended ACT runs
without one Python call per activation:

* :meth:`Defense.plan_activate_run` -- how many upcoming ACTs of one
  row are *uniform*: every one of them would return a
  :class:`DefenseAction` with the same ``extra_ns`` and no victim
  refreshes, row moves, table evictions, escalations, prunes, or any
  other state change beyond pure counter increments.  Returning
  ``None`` opts the defense out (the controller falls back to the
  scalar loop); a plan of 0 forces one scalar step (the ACT where the
  defense acts) after which the controller re-plans.
* :meth:`Defense.on_activate_run` -- commit the state updates of a
  planned run in closed form, bit-identical to ``count`` scalar
  ``on_activate`` calls.

Chunk boundaries are therefore exactly the points where a defense can
change behaviour: counter/Misra-Gries threshold crossings, TRR sampler
insertions/evictions, Hydra group escalations and row-counter
overflows, TWiCE prune checkpoints, SHADOW/RRS swap events, and PARA's
sub-``p`` RNG draws (located by vectorizing the draw stream, which is
bit-identical to the scalar draw sequence).  Every boundary ACT runs on
the scalar path, so outcomes match the scalar loop bit-for-bit --
``tests/test_batch_execution.py`` pins this per registered defense.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from ..dram.config import DRAMConfig
from ..dram.device import DRAMDevice

__all__ = [
    "DefenseAction",
    "RunAction",
    "OverheadReport",
    "Defense",
    "NoDefense",
]

KIB = 1024
MIB = 1024 * 1024


@dataclass
class DefenseAction:
    """What a defense did in response to one activation."""

    extra_ns: float = 0.0
    refreshed_victims: int = 0
    moved_rows: int = 0
    note: str = ""


@dataclass(frozen=True)
class RunAction:
    """A defense's plan for a run of identical activations.

    Attributes:
        count: Upcoming ACTs of the planned row that are uniform (see
            :meth:`Defense.plan_activate_run`); 0 means the very next
            ACT may act and must take the scalar path.
        extra_ns: Mitigation latency each of those ACTs charges --
            identical across the run by the planning contract (e.g.
            Hydra's per-ACT DRAM row-counter access), usually 0.0.
    """

    count: int
    extra_ns: float = 0.0


@dataclass
class OverheadReport:
    """One row of Table I.

    Attributes:
        framework: Mechanism name as printed in the paper.
        involved_memory: Storage technologies the mechanism occupies,
            e.g. ``"DRAM-SRAM"``.
        capacity: Mapping from technology to bytes of storage, e.g.
            ``{"SRAM": 57344}``.  ``None`` values mean Not Reported.
        counters: Number of hardware counters, if the mechanism is
            counter-based (Table I's "area overhead" column reports
            counter counts for those mechanisms).
        area_pct: Die area overhead in percent, for mechanisms whose
            area cost is structural rather than counter storage.
    """

    framework: str
    involved_memory: str
    capacity: dict[str, float | None] = field(default_factory=dict)
    counters: int | None = None
    area_pct: float | None = None

    def capacity_text(self) -> str:
        """Format the capacity column the way the paper prints it."""
        marks = {"DRAM": "*", "SRAM": "†", "CAM": "‡"}
        parts = []
        for tech, amount in self.capacity.items():
            mark = marks.get(tech, "")
            if amount is None:
                parts.append(f"NR{mark}")
            elif amount == 0:
                parts.append(f"0{mark}" if tech != "DRAM" else "0")
            elif amount >= 100 * KIB:
                value = round(amount / MIB, 3)
                parts.append(f"{value:g}MB{mark}")
            else:
                parts.append(f"{amount / KIB:g}KB{mark}")
        return "+".join(parts) if parts else "0"

    def area_text(self) -> str:
        """Format the area column the way the paper prints it."""
        if self.counters is not None:
            unit = "counter" if self.counters == 1 else "counters"
            return f"{self.counters} {unit}"
        if self.area_pct is not None:
            return f"{self.area_pct:g}%"
        return "NULL"


class Defense(ABC):
    """Base class for controller-integrated mitigations."""

    name: str = "defense"

    def __init__(self) -> None:
        self.device: DRAMDevice | None = None
        self.mitigation_ns_total = 0.0
        self.actions = 0
        self._windows_seen = 0

    def attach(self, device: DRAMDevice) -> None:
        """Bind the defense to the device it protects."""
        self.device = device

    def on_refresh_window(self) -> None:
        """Called once per completed refresh window; default: nothing."""

    def _window_check(self) -> None:
        """Fire :meth:`on_refresh_window` when a tREFW boundary passed.

        Concrete defenses call this at the top of ``on_activate`` so
        window-scoped state (count tables, prune lists) resets in step
        with the device's refresh walker.
        """
        assert self.device is not None, "defense not attached"
        completed = self.device.refresh.windows_completed
        while self._windows_seen < completed:
            self._windows_seen += 1
            self.on_refresh_window()

    def translate(self, row: int) -> int:
        """Map a pre-defense row number to its current physical row."""
        return row

    def on_activate(self, row: int, now_ns: float) -> DefenseAction:
        """React to one ACT of (physical) ``row``; default: do nothing."""
        return DefenseAction()

    # ------------------------------------------------------------------
    # Bulk hooks (the batched engine's fast path)
    # ------------------------------------------------------------------
    def plan_activate_run(self, row: int, limit: int) -> RunAction | None:
        """Plan up to ``limit`` upcoming ACTs of ``row`` for bulk
        execution.  The returned :class:`RunAction` promises that the
        next ``count`` scalar ``on_activate(row, ...)`` calls would each
        produce ``DefenseAction(extra_ns=plan.extra_ns)`` and mutate
        nothing beyond deterministic counter increments.

        Default: ``None`` -- the defense has not opted in and the
        controller keeps the request-at-a-time scalar path.
        """
        return None

    def on_activate_run(
        self, row: int, count: int, now_ns: float, step_ns: float
    ) -> None:
        """Commit the state updates of ``count`` planned ACTs of
        ``row`` in bulk, bit-identical to the scalar loop.  Only called
        after :meth:`plan_activate_run` returned a plan with
        ``plan.count >= count``.  ``now_ns`` is the simulated time of
        the run's first activation and ``step_ns`` the per-ACT advance.

        Default: replay through :meth:`on_activate` (correct for any
        subclass that overrides only the planner, at scalar cost).
        """
        for index in range(count):
            self.on_activate(row, now_ns + index * step_ns)

    def next_act_event(self, row: int, limit: int) -> RunAction | None:
        """Declare the defense's next event for the fast-forward core.

        The events engine (:mod:`repro.controller.events`) fuses whole
        multi-tick epochs -- refresh ticks included -- into one
        accumulate pass.  That is only sound for a defense whose
        ``on_activate`` performs no refresh-window-scoped work: the
        scalar loop would run its window check (:meth:`_window_check`)
        on the boundary ACT at each tick, and fusing the tick would
        skip it.  A defense that *is* insensitive to window boundaries
        declares so by returning a :class:`RunAction`: the next
        ``count`` ACTs of ``row`` are uniform (per the
        :meth:`plan_activate_run` contract) *and* may be fused across
        refresh ticks; 0 means the very next ACT is the defense's event
        and must run scalar.

        Default: ``None`` -- no closed-form event stream declared; the
        events engine falls back to the chunked bulk discipline
        (scalar boundary at every refresh tick), which is always
        correct.
        """
        return None

    @abstractmethod
    def overhead(self, config: DRAMConfig) -> OverheadReport:
        """Storage and area cost for Table I under ``config``."""

    # ------------------------------------------------------------------
    # Shared helpers for concrete mitigations
    # ------------------------------------------------------------------
    def _refresh_victims(self, row: int, action: DefenseAction) -> None:
        """Neighbour-refresh mitigation used by TRR-style defenses."""
        assert self.device is not None, "defense not attached"
        device = self.device
        for victim in device.mapper.neighbors(row, radius=1):
            device.rowhammer.neutralize_victim(victim)
            device.stats.refreshes += 1
            device.stats.energy.refresh += device.energy.e_ref
            action.extra_ns += device.timing.trc
            action.refreshed_victims += 1

    def _charge(self, action: DefenseAction) -> DefenseAction:
        self.mitigation_ns_total += action.extra_ns
        if action.extra_ns or action.refreshed_victims or action.moved_rows:
            self.actions += 1
        return action


class NoDefense(Defense):
    """Unprotected baseline."""

    name = "none"

    def plan_activate_run(self, row: int, limit: int) -> RunAction | None:
        # The base on_activate neither checks windows nor charges; a
        # whole run is uniform by construction.
        return RunAction(limit)

    def on_activate_run(
        self, row: int, count: int, now_ns: float, step_ns: float
    ) -> None:
        pass

    def next_act_event(self, row: int, limit: int) -> RunAction | None:
        # No window checks, no charges, no state: the whole horizon is
        # event-free, so epochs may fuse across refresh ticks.
        return RunAction(limit)

    def overhead(self, config: DRAMConfig) -> OverheadReport:
        return OverheadReport(
            framework="None", involved_memory="-", capacity={}, counters=None
        )
