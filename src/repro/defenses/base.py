"""Common interface for RowHammer mitigation mechanisms.

Every defense -- the baselines and DRAM-Locker itself -- plugs into the
memory controller through the same three hooks:

* :meth:`Defense.translate` -- address indirection (swap/shuffle-based
  mechanisms relocate rows and the controller must follow);
* :meth:`Defense.on_activate` -- called for every ACT the controller
  issues; the defense may charge mitigation latency, perform victim
  refreshes, or trigger its own row moves;
* :meth:`Defense.overhead` -- the storage/area accounting behind
  Table I.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from ..dram.config import DRAMConfig
from ..dram.device import DRAMDevice

__all__ = ["DefenseAction", "OverheadReport", "Defense", "NoDefense"]

KIB = 1024
MIB = 1024 * 1024


@dataclass
class DefenseAction:
    """What a defense did in response to one activation."""

    extra_ns: float = 0.0
    refreshed_victims: int = 0
    moved_rows: int = 0
    note: str = ""


@dataclass
class OverheadReport:
    """One row of Table I.

    Attributes:
        framework: Mechanism name as printed in the paper.
        involved_memory: Storage technologies the mechanism occupies,
            e.g. ``"DRAM-SRAM"``.
        capacity: Mapping from technology to bytes of storage, e.g.
            ``{"SRAM": 57344}``.  ``None`` values mean Not Reported.
        counters: Number of hardware counters, if the mechanism is
            counter-based (Table I's "area overhead" column reports
            counter counts for those mechanisms).
        area_pct: Die area overhead in percent, for mechanisms whose
            area cost is structural rather than counter storage.
    """

    framework: str
    involved_memory: str
    capacity: dict[str, float | None] = field(default_factory=dict)
    counters: int | None = None
    area_pct: float | None = None

    def capacity_text(self) -> str:
        """Format the capacity column the way the paper prints it."""
        marks = {"DRAM": "*", "SRAM": "†", "CAM": "‡"}
        parts = []
        for tech, amount in self.capacity.items():
            mark = marks.get(tech, "")
            if amount is None:
                parts.append(f"NR{mark}")
            elif amount == 0:
                parts.append(f"0{mark}" if tech != "DRAM" else "0")
            elif amount >= 100 * KIB:
                value = round(amount / MIB, 3)
                parts.append(f"{value:g}MB{mark}")
            else:
                parts.append(f"{amount / KIB:g}KB{mark}")
        return "+".join(parts) if parts else "0"

    def area_text(self) -> str:
        """Format the area column the way the paper prints it."""
        if self.counters is not None:
            unit = "counter" if self.counters == 1 else "counters"
            return f"{self.counters} {unit}"
        if self.area_pct is not None:
            return f"{self.area_pct:g}%"
        return "NULL"


class Defense(ABC):
    """Base class for controller-integrated mitigations."""

    name: str = "defense"

    def __init__(self) -> None:
        self.device: DRAMDevice | None = None
        self.mitigation_ns_total = 0.0
        self.actions = 0
        self._windows_seen = 0

    def attach(self, device: DRAMDevice) -> None:
        """Bind the defense to the device it protects."""
        self.device = device

    def on_refresh_window(self) -> None:
        """Called once per completed refresh window; default: nothing."""

    def _window_check(self) -> None:
        """Fire :meth:`on_refresh_window` when a tREFW boundary passed.

        Concrete defenses call this at the top of ``on_activate`` so
        window-scoped state (count tables, prune lists) resets in step
        with the device's refresh walker.
        """
        assert self.device is not None, "defense not attached"
        completed = self.device.refresh.windows_completed
        while self._windows_seen < completed:
            self._windows_seen += 1
            self.on_refresh_window()

    def translate(self, row: int) -> int:
        """Map a pre-defense row number to its current physical row."""
        return row

    def on_activate(self, row: int, now_ns: float) -> DefenseAction:
        """React to one ACT of (physical) ``row``; default: do nothing."""
        return DefenseAction()

    @abstractmethod
    def overhead(self, config: DRAMConfig) -> OverheadReport:
        """Storage and area cost for Table I under ``config``."""

    # ------------------------------------------------------------------
    # Shared helpers for concrete mitigations
    # ------------------------------------------------------------------
    def _refresh_victims(self, row: int, action: DefenseAction) -> None:
        """Neighbour-refresh mitigation used by TRR-style defenses."""
        assert self.device is not None, "defense not attached"
        device = self.device
        for victim in device.mapper.neighbors(row, radius=1):
            device.rowhammer.neutralize_victim(victim)
            device.stats.refreshes += 1
            device.stats.energy.refresh += device.energy.e_ref
            action.extra_ns += device.timing.trc
            action.refreshed_victims += 1

    def _charge(self, action: DefenseAction) -> DefenseAction:
        self.mitigation_ns_total += action.extra_ns
        if action.extra_ns or action.refreshed_victims or action.moved_rows:
            self.actions += 1
        return action


class NoDefense(Defense):
    """Unprotected baseline."""

    name = "none"

    def overhead(self, config: DRAMConfig) -> OverheadReport:
        return OverheadReport(
            framework="None", involved_memory="-", capacity={}, counters=None
        )
