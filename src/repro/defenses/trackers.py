"""Aggressor-tracking data structures shared by the counter-based defenses."""

from __future__ import annotations

from .. import obs

__all__ = ["MisraGries"]


class MisraGries:
    """The Misra-Gries frequent-items summary (Graphene's count table).

    Maintains at most ``k`` counters.  The classical guarantee -- which
    the property tests verify -- is that for every item::

        true_count - N/(k+1) <= estimate(item) <= true_count

    where ``N`` is the total number of observations.  Graphene relies on
    it to never *miss* a row that was activated more than the threshold.
    """

    def __init__(self, k: int):
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self.counters: dict[int, int] = {}
        self.decrements = 0
        self.observations = 0

    def observe(self, item: int) -> int:
        """Count one occurrence; return the item's current estimate."""
        self.observations += 1
        count = self.counters.get(item)
        if count is not None:
            self.counters[item] = count + 1
            return count + 1
        if len(self.counters) < self.k:
            self.counters[item] = 1
            return 1
        # Table full: decrement everybody (the item itself is absorbed).
        self.decrements += 1
        tel = obs.ACTIVE
        if tel is not None:
            tel.metrics.inc("defense.graphene.decrements")
        for key in list(self.counters):
            remaining = self.counters[key] - 1
            if remaining == 0:
                del self.counters[key]
            else:
                self.counters[key] = remaining
        return 0

    def estimate(self, item: int) -> int:
        return self.counters.get(item, 0)

    def quiet_span(self, item: int, ceiling: int) -> int:
        """Consecutive observations of a *tracked* ``item`` before its
        estimate reaches ``ceiling`` -- each a pure increment (no
        insertion, no decrement-all), so a bulk caller may absorb them
        via :meth:`absorb_run`.  0 when the item is untracked (the next
        observation inserts or decrements, which is stateful)."""
        count = self.counters.get(item)
        if count is None:
            return 0
        return max(0, ceiling - 1 - count)

    def absorb_run(self, item: int, count: int) -> None:
        """Closed-form commit of ``count`` increment-only observations
        of a tracked item (caller respects :meth:`quiet_span`)."""
        self.observations += count
        self.counters[item] += count

    def reset(self) -> None:
        self.counters.clear()
        self.decrements = 0
        self.observations = 0

    def reset_item(self, item: int) -> None:
        """Graphene resets a counter after mitigating its row."""
        if item in self.counters:
            self.counters[item] = 0
