"""Target Row Refresh (TRR), as deployed by DRAM vendors.

A small sampler table tracks recently-activated rows; rows whose count
crosses the mitigation threshold get their victims refreshed.  The
table is deliberately tiny (vendor TRR tracks 1-16 aggressors), which
is exactly the weakness TRRespass-style many-sided patterns exploit --
and the reason the paper's Table I baselines moved to bigger trackers.
"""

from __future__ import annotations

from .. import obs
from ..dram.config import DRAMConfig
from .base import Defense, DefenseAction, OverheadReport, RunAction

__all__ = ["TRR"]


class TRR(Defense):
    name = "TRR"

    def __init__(self, table_entries: int = 16, threshold: int | None = None):
        super().__init__()
        if table_entries < 1:
            raise ValueError("table_entries must be >= 1")
        self.table_entries = table_entries
        self.threshold = threshold
        self._counts: dict[int, int] = {}

    def attach(self, device) -> None:
        super().attach(device)
        if self.threshold is None:
            self.threshold = max(1, device.timing.trh // 2)

    def on_activate(self, row: int, now_ns: float) -> DefenseAction:
        self._window_check()
        action = DefenseAction()
        count = self._counts.get(row)
        if count is None:
            if len(self._counts) >= self.table_entries:
                # Evict the coldest entry -- the sampler's blind spot.
                coldest = min(self._counts, key=self._counts.get)
                del self._counts[coldest]
                tel = obs.ACTIVE
                if tel is not None:
                    tel.metrics.inc("defense.trr.evictions")
            self._counts[row] = 1
        else:
            self._counts[row] = count + 1
            if self._counts[row] >= self.threshold:
                self._refresh_victims(row, action)
                self._counts[row] = 0
                action.note = "trr-mitigation"
                tel = obs.ACTIVE
                if tel is not None:
                    tel.metrics.inc("defense.trr.mitigations")
        return self._charge(action)

    def plan_activate_run(self, row: int, limit: int) -> RunAction | None:
        """Quiet while the sampler just increments: the row must already
        be tracked (insertion may evict) and stay under the threshold."""
        self._window_check()
        count = self._counts.get(row)
        if count is None:
            return RunAction(0)
        assert self.threshold is not None
        return RunAction(max(0, min(limit, self.threshold - 1 - count)))

    def on_activate_run(
        self, row: int, count: int, now_ns: float, step_ns: float
    ) -> None:
        self._counts[row] += count

    def on_refresh_window(self) -> None:
        self._counts.clear()

    def overhead(self, config: DRAMConfig) -> OverheadReport:
        entry_bytes = 6  # row address + count
        return OverheadReport(
            framework="TRR",
            involved_memory="SRAM",
            capacity={"SRAM": self.table_entries * entry_bytes},
            counters=self.table_entries,
        )
