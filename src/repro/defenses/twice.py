"""TWiCE (Lee et al., ISCA 2019): time-window counters.

Tracks activations in a pruned table: entries that cannot possibly
reach the RowHammer threshold before the refresh window ends are
discarded at periodic checkpoints, keeping the table small.  Rows whose
count crosses the mitigation threshold get their victims refreshed.
"""

from __future__ import annotations

from ..dram.config import DRAMConfig
from .base import MIB, Defense, DefenseAction, OverheadReport, RunAction

__all__ = ["TWiCE"]


class TWiCE(Defense):
    name = "TWiCE"

    def __init__(
        self,
        threshold: int | None = None,
        prune_period: int = 2048,
        prune_min_count: int = 2,
    ):
        super().__init__()
        self.threshold = threshold
        self.prune_period = prune_period
        self.prune_min_count = prune_min_count
        self._counts: dict[int, int] = {}
        self._since_prune = 0
        self.pruned_entries = 0

    def attach(self, device) -> None:
        super().attach(device)
        if self.threshold is None:
            self.threshold = max(1, device.timing.trh // 2)

    def on_activate(self, row: int, now_ns: float) -> DefenseAction:
        self._window_check()
        action = DefenseAction()
        self._counts[row] = self._counts.get(row, 0) + 1
        if self._counts[row] >= self.threshold:
            self._refresh_victims(row, action)
            self._counts[row] = 0
            action.note = "twice-mitigation"
        self._since_prune += 1
        if self._since_prune >= self.prune_period:
            self._prune()
        return self._charge(action)

    def plan_activate_run(self, row: int, limit: int) -> RunAction | None:
        """Quiet below both the mitigation threshold and the next prune
        checkpoint (pruning rebuilds the table, so it runs scalar)."""
        self._window_check()
        assert self.threshold is not None
        count = self._counts.get(row, 0)
        quiet = min(
            self.threshold - 1 - count,
            self.prune_period - 1 - self._since_prune,
        )
        return RunAction(max(0, min(limit, quiet)))

    def on_activate_run(
        self, row: int, count: int, now_ns: float, step_ns: float
    ) -> None:
        self._counts[row] = self._counts.get(row, 0) + count
        self._since_prune += count

    def _prune(self) -> None:
        """Drop cold entries at the checkpoint (TWiCE's table bound)."""
        self._since_prune = 0
        before = len(self._counts)
        self._counts = {
            row: count
            for row, count in self._counts.items()
            if count >= self.prune_min_count
        }
        self.pruned_entries += before - len(self._counts)

    def on_refresh_window(self) -> None:
        self._counts.clear()
        self._since_prune = 0

    def overhead(self, config: DRAMConfig) -> OverheadReport:
        """Table I row: 3.16 MB SRAM + 1.6 MB CAM (TWiCE's published
        table budget for the standardized 32 GB configuration)."""
        return OverheadReport(
            framework="TWiCE",
            involved_memory="SRAM-CAM",
            capacity={"SRAM": 3.16 * MIB, "CAM": 1.6 * MIB},
            counters=1,
        )
