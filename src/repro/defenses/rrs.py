"""RRS: Randomized Row-Swap (Saileshwar et al., ASPLOS 2022).

Aggressor-focused: a Misra-Gries tracker spots rows nearing the
threshold and *swaps* them with a random row, breaking the spatial
correlation between aggressor and victim before the damage lands.  The
swap is a genuine three-RowClone data exchange through a reserved
buffer row; the Row Indirection Table is modelled by the permutation
the controller consults via :meth:`translate`.

SRS (Secure Row-Swap, Woo et al. 2022) is the hardened variant: fewer
counters plus defenses against the swap-targeting attacks RRS allows.
Here it differs by a smaller tracker and a lower swap threshold.
"""

from __future__ import annotations

import numpy as np

from ..dram.config import DRAMConfig
from .base import MIB, Defense, DefenseAction, OverheadReport, RunAction
from .permutation import RowPermutation
from .trackers import MisraGries

__all__ = ["RRS", "SRS"]


class RRS(Defense):
    name = "RRS"

    def __init__(
        self,
        table_entries: int = 128,
        swap_threshold: int | None = None,
        seed: int = 0,
    ):
        super().__init__()
        self.table_entries = table_entries
        self.swap_threshold = swap_threshold
        self.rng = np.random.default_rng(seed)
        self.permutation = RowPermutation()
        self._tables: dict[int, MisraGries] = {}
        self.swaps_performed = 0

    def attach(self, device) -> None:
        super().attach(device)
        if self.swap_threshold is None:
            # Swap well before TRH: RRS uses ~TRH/6.
            self.swap_threshold = max(1, device.timing.trh // 6)

    def translate(self, row: int) -> int:
        return self.permutation.where(row)

    def on_activate(self, row: int, now_ns: float) -> DefenseAction:
        self._window_check()
        assert self.device is not None
        action = DefenseAction()
        bank = self.device.mapper.row_address(row).bank
        table = self._tables.setdefault(bank, MisraGries(self.table_entries))
        if table.observe(row) >= self.swap_threshold:
            self._swap_with_random(row, action)
            table.reset_item(row)
        return self._charge(action)

    def plan_activate_run(self, row: int, limit: int) -> RunAction | None:
        """Quiet while the tracked row's estimate increments below the
        swap threshold; swaps (which re-route ``translate``) and table
        maintenance are scalar chunk boundaries."""
        self._window_check()
        assert self.device is not None
        table = self._tables.get(self.device.mapper.row_address(row).bank)
        if table is None:
            return RunAction(0)
        assert self.swap_threshold is not None
        return RunAction(
            min(limit, table.quiet_span(row, self.swap_threshold))
        )

    def on_activate_run(
        self, row: int, count: int, now_ns: float, step_ns: float
    ) -> None:
        assert self.device is not None
        bank = self.device.mapper.row_address(row).bank
        self._tables[bank].absorb_run(row, count)

    def _swap_with_random(self, row: int, action: DefenseAction) -> None:
        assert self.device is not None
        device = self.device
        mapper = device.mapper
        addr = mapper.row_address(row)
        reserved = mapper.reserved_rows(addr.bank, addr.subarray)
        buffer_row = reserved[0]
        # Random partner among the usable rows of the same subarray
        # (RowClone constrains the swap to one subarray).
        usable = device.config.usable_rows_per_subarray
        while True:
            local = int(self.rng.integers(usable))
            partner = mapper.row_index((addr.bank, addr.subarray, local))
            if partner != row:
                break
        for src, dst in ((row, buffer_row), (partner, row), (buffer_row, partner)):
            device.rowclone(src, dst)
        self.permutation.swap_locations(row, partner)
        self.swaps_performed += 1
        action.extra_ns += 3 * device.timing.rowclone_ns
        action.moved_rows += 2
        action.note = f"{self.name.lower()}-swap"

    def overhead(self, config: DRAMConfig) -> OverheadReport:
        """Table I row: 4 MB DRAM (indirection) + unreported SRAM."""
        return OverheadReport(
            framework="RRS",
            involved_memory="DRAM-SRAM",
            capacity={"DRAM": 4 * MIB, "SRAM": None},
            counters=None,
        )


class SRS(RRS):
    name = "SRS"

    def __init__(
        self,
        table_entries: int = 48,
        swap_threshold: int | None = None,
        seed: int = 0,
    ):
        super().__init__(
            table_entries=table_entries, swap_threshold=swap_threshold, seed=seed
        )

    def attach(self, device) -> None:
        Defense.attach(self, device)
        if self.swap_threshold is None:
            # SRS swaps earlier with its reduced counter budget.
            self.swap_threshold = max(1, device.timing.trh // 8)

    def overhead(self, config: DRAMConfig) -> OverheadReport:
        """Table I row: 1.26 MB DRAM + unreported SRAM."""
        return OverheadReport(
            framework="SRS",
            involved_memory="DRAM-SRAM",
            capacity={"DRAM": 1.26 * MIB, "SRAM": None},
            counters=None,
        )
