"""Deterministic seed derivation shared across the stack.

One definition, imported by the scenario harness (per-scenario seeds)
and the serving workload engine (per-tenant / per-channel RNG streams)
-- both reproducibility anchors, so the mixing function must never
fork.
"""

from __future__ import annotations

import zlib

__all__ = ["derive_seed"]


def derive_seed(name: str, base_seed: int = 0) -> int:
    """Stable per-name seed: a pure function of ``(name, base_seed)``,
    independent of every other name -- so scenario matrices and tenant
    fleets stay reproducible as they grow or reorder."""
    return (zlib.crc32(name.encode("utf-8")) ^ (base_seed * 0x9E3779B1)) & 0x7FFFFFFF
