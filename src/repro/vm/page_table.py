"""A two-level page table materialised in simulated DRAM rows.

One virtual page maps to one DRAM row (the natural granule here, since
RowHammer disturbs whole rows).  The table is radix-style: the root
(L1) row holds PTEs pointing at leaf (L2) rows; leaf PTEs hold the
final frame numbers.  All table state lives *in DRAM data*, so a
RowHammer flip in a table row genuinely corrupts translation -- the
page-table attack needs nothing scripted.
"""

from __future__ import annotations

import math

from ..dram.device import DRAMDevice
from .pte import (
    PTE,
    PTE_BYTES,
    PTEFlags,
    decode_pte,
    encode_pte,
    pte_from_bytes,
    pte_to_bytes,
)

__all__ = ["PageTable", "PageFault"]


class PageFault(RuntimeError):
    """Raised when translation hits an invalid entry."""


class PageTable:
    """Two-level page table over DRAM frames (1 page == 1 row)."""

    def __init__(self, device: DRAMDevice, table_rows: list[int]):
        """``table_rows``: DRAM rows reserved for page-table storage.

        The first row becomes the L1 root; further rows are allocated to
        L2 leaf tables on demand.
        """
        if not table_rows:
            raise ValueError("need at least one row for the root table")
        self.device = device
        self.entries_per_table = device.config.row_bytes // PTE_BYTES
        self.l2_bits = int(math.log2(self.entries_per_table))
        if 2 ** self.l2_bits != self.entries_per_table:
            raise ValueError("row must hold a power-of-two number of PTEs")
        self.root_row = table_rows[0]
        self._spare_rows = list(table_rows[1:])
        self._l2_rows: dict[int, int] = {}  # l1 index -> row holding that L2 table

    # ------------------------------------------------------------------
    # Mapping management (OS side: uses the data plane)
    # ------------------------------------------------------------------
    def map(self, vpn: int, pfn: int, flags: PTEFlags = PTEFlags()) -> None:
        """Install a translation ``vpn -> pfn``."""
        l1_index, l2_index = self._split(vpn)
        l2_row = self._l2_rows.get(l1_index)
        if l2_row is None:
            l2_row = self._allocate_l2(l1_index)
        self._store(l2_row, l2_index, PTE(valid=True, pfn=pfn, flags=flags))

    def unmap(self, vpn: int) -> None:
        l1_index, l2_index = self._split(vpn)
        l2_row = self._l2_rows.get(l1_index)
        if l2_row is not None:
            self._store(l2_row, l2_index, PTE(valid=False, pfn=0))

    # ------------------------------------------------------------------
    # Walking (hardware side)
    # ------------------------------------------------------------------
    def walk(self, vpn: int) -> PTE:
        """Translate by reading the in-DRAM tables (no timing cost)."""
        l1_index, l2_index = self._split(vpn)
        root_entry = self._load(self.root_row, l1_index)
        if not root_entry.valid:
            raise PageFault(f"L1 entry {l1_index} invalid for vpn {vpn}")
        l2_entry = self._load(root_entry.pfn, l2_index)
        if not l2_entry.valid:
            raise PageFault(f"L2 entry {l2_index} invalid for vpn {vpn}")
        return l2_entry

    # ------------------------------------------------------------------
    # Introspection used by attacks and defenses
    # ------------------------------------------------------------------
    def table_rows(self) -> list[int]:
        """All DRAM rows currently holding page-table data."""
        return [self.root_row, *sorted(self._l2_rows.values())]

    def pte_location(self, vpn: int) -> tuple[int, int]:
        """(row, byte offset) where the *leaf* PTE of ``vpn`` lives."""
        l1_index, l2_index = self._split(vpn)
        l2_row = self._l2_rows.get(l1_index)
        if l2_row is None:
            raise PageFault(f"vpn {vpn} has no leaf table")
        return l2_row, l2_index * PTE_BYTES

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _split(self, vpn: int) -> tuple[int, int]:
        if vpn < 0:
            raise ValueError("vpn must be non-negative")
        l1_index = vpn >> self.l2_bits
        if l1_index >= self.entries_per_table:
            raise ValueError(f"vpn {vpn} exceeds two-level reach")
        return l1_index, vpn & (self.entries_per_table - 1)

    def _allocate_l2(self, l1_index: int) -> int:
        if not self._spare_rows:
            raise RuntimeError("out of page-table rows")
        l2_row = self._spare_rows.pop(0)
        self._l2_rows[l1_index] = l2_row
        self._store(self.root_row, l1_index, PTE(valid=True, pfn=l2_row))
        return l2_row

    def _store(self, row: int, index: int, pte: PTE) -> None:
        self.device.poke_bytes(row, index * PTE_BYTES, pte_to_bytes(encode_pte(pte)))

    def _load(self, row: int, index: int) -> PTE:
        data = self.device.peek_bytes(row, index * PTE_BYTES, PTE_BYTES)
        return decode_pte(pte_from_bytes(data))
