"""MMU: translation through the memory controller, with a tiny TLB.

Page-table walks issue privileged READ requests through the controller,
so PTW traffic pays DRAM timing, shows up in the stats, and -- crucially
for the PTA experiments -- reads whatever bits RowHammer left in the
table rows.
"""

from __future__ import annotations

from collections import OrderedDict

from ..controller.controller import MemoryController
from .page_table import PageFault, PageTable
from .pte import PTE, PTE_BYTES, decode_pte, pte_from_bytes

__all__ = ["MMU"]


class MMU:
    """Hardware walker bound to one page table and controller."""

    def __init__(
        self,
        controller: MemoryController,
        page_table: PageTable,
        tlb_entries: int = 0,
    ):
        self.controller = controller
        self.page_table = page_table
        self.tlb_entries = tlb_entries
        self._tlb: OrderedDict[int, int] = OrderedDict()
        self.walks = 0
        self.tlb_hits = 0

    def translate(self, vpn: int) -> int:
        """Virtual page number -> physical frame (DRAM row)."""
        if self.tlb_entries:
            cached = self._tlb.get(vpn)
            if cached is not None:
                self._tlb.move_to_end(vpn)
                self.tlb_hits += 1
                return cached
        pfn = self._walk_via_controller(vpn)
        if self.tlb_entries:
            self._tlb[vpn] = pfn
            if len(self._tlb) > self.tlb_entries:
                self._tlb.popitem(last=False)
        return pfn

    def flush_tlb(self) -> None:
        self._tlb.clear()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _walk_via_controller(self, vpn: int) -> int:
        table = self.page_table
        self.walks += 1
        l1_index = vpn >> table.l2_bits
        l2_index = vpn & (table.entries_per_table - 1)
        root_entry = self._read_pte(table.root_row, l1_index)
        if not root_entry.valid:
            raise PageFault(f"L1 entry {l1_index} invalid for vpn {vpn}")
        leaf_entry = self._read_pte(root_entry.pfn, l2_index)
        if not leaf_entry.valid:
            raise PageFault(f"L2 entry {l2_index} invalid for vpn {vpn}")
        return leaf_entry.pfn

    def _read_pte(self, row: int, index: int) -> PTE:
        offset = index * PTE_BYTES
        burst_start = (offset // 64) * 64
        self.controller.read(row, column=burst_start, privileged=True)
        physical = row
        if self.controller.locker is not None:
            physical = self.controller.locker.translate(row)
        if self.controller.defense is not None:
            physical = self.controller.defense.translate(physical)
        data = self.controller.device.peek_bytes(physical, offset, PTE_BYTES)
        return decode_pte(pte_from_bytes(data))
