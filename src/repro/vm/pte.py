"""Page-table entry layout.

64-bit PTEs in the x86 spirit: a valid bit, a small flag field, and the
physical frame number (PFN).  The PTA threat model flips PFN bits, so
the layout exposes exactly which *row bit positions* the PFN occupies
-- that is what the attacker templates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["PTE_BYTES", "PTEFlags", "PTE", "encode_pte", "decode_pte", "pfn_bit_positions"]

PTE_BYTES = 8

_VALID_BIT = 0
_FLAG_SHIFT = 1
_FLAG_BITS = 11
_PFN_SHIFT = 12
_PFN_BITS = 40


@dataclass(frozen=True)
class PTEFlags:
    """The subset of flags the simulation cares about."""

    writable: bool = True
    user: bool = True

    def encode(self) -> int:
        value = 0
        if self.writable:
            value |= 1 << 0
        if self.user:
            value |= 1 << 1
        return value

    @staticmethod
    def decode(value: int) -> "PTEFlags":
        return PTEFlags(writable=bool(value & 1), user=bool(value & 2))


@dataclass(frozen=True)
class PTE:
    """One decoded page-table entry."""

    valid: bool
    pfn: int
    flags: PTEFlags = PTEFlags()


def encode_pte(pte: PTE) -> int:
    """Pack a :class:`PTE` into its 64-bit representation."""
    if not 0 <= pte.pfn < (1 << _PFN_BITS):
        raise ValueError(f"pfn {pte.pfn} out of range")
    value = 0
    if pte.valid:
        value |= 1 << _VALID_BIT
    value |= pte.flags.encode() << _FLAG_SHIFT
    value |= pte.pfn << _PFN_SHIFT
    return value


def decode_pte(value: int) -> PTE:
    """Unpack a 64-bit word into a :class:`PTE`."""
    valid = bool(value & (1 << _VALID_BIT))
    flags = PTEFlags.decode((value >> _FLAG_SHIFT) & ((1 << _FLAG_BITS) - 1))
    pfn = (value >> _PFN_SHIFT) & ((1 << _PFN_BITS) - 1)
    return PTE(valid=valid, pfn=pfn, flags=flags)


def pte_to_bytes(value: int) -> np.ndarray:
    """Little-endian byte image of one PTE."""
    return np.frombuffer(
        int(value).to_bytes(PTE_BYTES, "little"), dtype=np.uint8
    ).copy()


def pte_from_bytes(data: np.ndarray) -> int:
    """Inverse of :func:`pte_to_bytes`."""
    if len(data) != PTE_BYTES:
        raise ValueError("a PTE is exactly 8 bytes")
    return int.from_bytes(bytes(bytearray(data)), "little")


def pfn_bit_positions(entry_offset_bytes: int, pfn_bit: int) -> int:
    """Row-bit position of one PFN bit of a PTE at a byte offset.

    This is the coordinate an attacker passes to the vulnerability
    template: flipping this row bit flips PFN bit ``pfn_bit`` of the
    entry stored at ``entry_offset_bytes`` within the row.
    """
    if not 0 <= pfn_bit < _PFN_BITS:
        raise ValueError(f"pfn bit {pfn_bit} out of range")
    return entry_offset_bytes * 8 + _PFN_SHIFT + pfn_bit
