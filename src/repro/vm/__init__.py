"""Virtual memory substrate: PTEs, page tables in DRAM, MMU walker."""

from .mmu import MMU
from .page_table import PageFault, PageTable
from .pte import (
    PTE,
    PTE_BYTES,
    PTEFlags,
    decode_pte,
    encode_pte,
    pfn_bit_positions,
    pte_from_bytes,
    pte_to_bytes,
)

__all__ = [
    "MMU",
    "PTE",
    "PTE_BYTES",
    "PTEFlags",
    "PageFault",
    "PageTable",
    "decode_pte",
    "encode_pte",
    "pfn_bit_positions",
    "pte_from_bytes",
    "pte_to_bytes",
]
