"""Canonical execution-engine names and the one validator for them.

The ``engine=`` knob appears at every layer of the stack -- the memory
controller's drive (:class:`~repro.controller.MemoryController`), the
attack search sessions (:class:`~repro.attacks.session.SearchSession`),
the harness runners, and the serving engine -- and each used to carry
its own copy of the accepted names and its own error wording.  This
module is now the single source of truth:

* :data:`EXECUTION_ENGINES` -- the controller drives.  ``"scalar"``
  executes one request at a time, ``"bulk"`` run-length-compresses
  same-row streams, ``"events"`` defers whole streams onto a
  clock-ordered event queue.  All three are bit-identical by contract
  (``docs/ARCHITECTURE.md``, pinned by
  ``tests/test_engine_equivalence.py``).
* :data:`SEARCH_ENGINES` -- the attack-session bit-search drives
  (``"suffix"`` array fast path vs ``"full"`` reference walk), the same
  equivalence discipline one layer up.
* :func:`resolve_engine` -- validation with one uniform error message,
  so an unknown engine name fails identically no matter which layer
  first sees it.

``ENGINES`` remains an alias of :data:`EXECUTION_ENGINES` because that
is the name the controller has always exported.
"""

from __future__ import annotations

__all__ = [
    "EXECUTION_ENGINES",
    "SEARCH_ENGINES",
    "ENGINES",
    "resolve_engine",
]

#: Controller execution drives, cheapest-to-drive first.  Equivalence
#: contract: identical payloads for identical request streams.
EXECUTION_ENGINES: tuple[str, ...] = ("scalar", "bulk", "events")

#: Attack-session bit-search drives (``SearchSession``).
SEARCH_ENGINES: tuple[str, ...] = ("suffix", "full")

#: Historical alias -- the controller's public name for its drives.
ENGINES = EXECUTION_ENGINES


def resolve_engine(
    name: str,
    *,
    allowed: tuple[str, ...] = EXECUTION_ENGINES,
    kind: str = "execution",
) -> str:
    """Validate an engine name against its family and return it.

    Every layer funnels through here, so an unknown name raises the
    same ``ValueError`` wording whether the controller, an attack
    session, the harness, or the serving facade sees it first.

    Args:
        name: The engine name to validate.
        allowed: The accepted family (:data:`EXECUTION_ENGINES` or
            :data:`SEARCH_ENGINES`).
        kind: Human label for the family, used in the error message.

    Returns:
        ``name`` unchanged, when valid.

    Raises:
        ValueError: With the uniform wording
        ``unknown <kind> engine <name>; choose from <allowed>``.
    """
    if name not in allowed:
        raise ValueError(
            f"unknown {kind} engine {name!r}; choose from {allowed}"
        )
    return name
