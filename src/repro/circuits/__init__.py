"""Circuit-level models: RowClone charge sharing + Monte-Carlo sweep."""

from .montecarlo import (
    PAPER_ERROR_RATES,
    MonteCarlo,
    MonteCarloResult,
    copy_error_rate,
)
from .rowclone_cell import CellParams, CopyMargins, RowCloneCircuit

__all__ = [
    "CellParams",
    "CopyMargins",
    "MonteCarlo",
    "MonteCarloResult",
    "PAPER_ERROR_RATES",
    "RowCloneCircuit",
    "copy_error_rate",
]
