"""Section IV-D: Monte-Carlo analysis of unsuccessful swapping.

The paper runs 10 000 Spectre trials per corner with all components
varied from +/-0 % to +/-20 % and reports erroneous SWAP rates of 0 %,
0.14 % and 9.6 % at +/-0 %, +/-10 % and +/-20 %.  This module drives
the behavioural circuit model over the same sweep and exposes the
interpolated error-rate curve the rest of the system (the SWAP engine,
the security model) consumes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .rowclone_cell import RowCloneCircuit

__all__ = [
    "PAPER_ERROR_RATES",
    "MonteCarloResult",
    "MonteCarlo",
    "copy_error_rate",
]

#: The paper's reported per-copy error rates by variation bound.
PAPER_ERROR_RATES: dict[int, float] = {0: 0.0, 10: 0.0014, 20: 0.096}


@dataclass(frozen=True)
class MonteCarloResult:
    """Error statistics for one variation corner."""

    variation_pct: float
    trials: int
    failures: int

    @property
    def error_rate(self) -> float:
        return self.failures / self.trials if self.trials else 0.0


class MonteCarlo:
    """10 000-trial process-variation sweep of the in-DRAM copy."""

    def __init__(
        self,
        circuit: RowCloneCircuit | None = None,
        seed: int = 2024,
        trials: int = 10_000,
    ):
        if trials < 1:
            raise ValueError("trials must be >= 1")
        self.circuit = circuit or RowCloneCircuit()
        self.seed = seed
        self.trials = trials

    def run(self, variation_pct: float) -> MonteCarloResult:
        """Sample one corner."""
        rng = np.random.default_rng([self.seed, int(variation_pct * 100)])
        failures = self.circuit.sample_failures(
            variation_pct, self.trials, rng
        )
        return MonteCarloResult(
            variation_pct=variation_pct,
            trials=self.trials,
            failures=int(np.count_nonzero(failures)),
        )

    def sweep(
        self, percents: tuple[float, ...] = (0, 5, 10, 15, 20)
    ) -> list[MonteCarloResult]:
        """The paper's 0..+/-20 % sweep."""
        return [self.run(pct) for pct in percents]


def copy_error_rate(variation_pct: float) -> float:
    """Per-copy error rate at a variation bound (paper-calibrated).

    Piecewise log-linear interpolation through the paper's three
    reported corners; this is what :class:`repro.locker.SwapEngine`
    callers use to set ``copy_error_rate`` for a chosen corner.
    """
    if variation_pct < 0:
        raise ValueError("variation_pct must be >= 0")
    points = sorted(PAPER_ERROR_RATES.items())
    if variation_pct <= points[0][0]:
        return points[0][1]
    if variation_pct >= points[-1][0]:
        return points[-1][1]
    for (x0, y0), (x1, y1) in zip(points, points[1:]):
        if x0 <= variation_pct <= x1:
            if y0 <= 0.0:
                # Linear from an exact-zero corner.
                return y1 * (variation_pct - x0) / (x1 - x0)
            # Log-linear between positive corners.
            log_y = np.log(y0) + (np.log(y1) - np.log(y0)) * (
                (variation_pct - x0) / (x1 - x0)
            )
            return float(np.exp(log_y))
    raise AssertionError("unreachable")
