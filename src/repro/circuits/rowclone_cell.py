"""Electrical model of one in-DRAM copy (RowClone AAP).

A copy succeeds when two margins hold:

1. **Sense margin** -- activating the source row charge-shares the cell
   capacitor with the precharged bitline; the deviation
   ``dV = (VDD/2) * Cc / (Cc + Cb)`` must exceed the sense amplifier's
   input offset for the latch to resolve the stored value.
2. **Restore margin** -- the back-to-back second ACT drives the latched
   value into the destination cell through its access transistor; the
   cell must charge within the restore window, i.e. the RC settle ratio
   ``t_restore / (Ron * (Cc + Cdl))`` must exceed the full-write ratio.

Process variation perturbs every component (cell/bitline capacitance,
transistor on-resistance, sense offset).  The paper sweeps +/-0 %,
+/-10 %, +/-20 % "variation in parameters" and reports copy error rates
of 0 %, 0.14 % and 9.6 % over 10 000 Monte-Carlo trials; the nominal
constants below are calibrated so this model reproduces those three
points (see ``MonteCarlo`` and EXPERIMENTS.md).  Variation bounds map to
Gaussian sigmas via the usual 3-sigma convention, with a mild
superlinear compounding exponent because wider bounds hit more devices
in the two-ACT series path.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["CellParams", "CopyMargins", "RowCloneCircuit"]


@dataclass(frozen=True)
class CellParams:
    """Nominal 45 nm DRAM cell / array electrical parameters."""

    vdd: float = 1.2  # volts
    c_cell_ff: float = 24.0  # storage capacitor
    c_bitline_ff: float = 85.0  # bitline parasitic
    sense_offset_mv: float = 113.5  # sense-amp input offset (worst-case corner)
    r_on_kohm: float = 15.0  # access transistor on-resistance
    t_restore_ns: float = 1.6  # drive window inside the AAP
    settle_ratio_min: float = 3.0  # t/tau needed for a full write

    #: Bound -> sigma convention (bound = 3 sigma).
    sigma_per_bound: float = 1.0 / 3.0
    #: Superlinear compounding of wide variation bounds.
    compounding_exponent: float = 1.24
    #: Reference bound (percent) at which compounding is neutral.
    reference_pct: float = 10.0


@dataclass(frozen=True)
class CopyMargins:
    """Margins of one sampled copy; negative means failure."""

    sense_margin_v: float
    restore_margin: float

    @property
    def failed(self) -> bool:
        return self.sense_margin_v <= 0.0 or self.restore_margin <= 0.0


class RowCloneCircuit:
    """Vectorised margin evaluation for Monte-Carlo sampling."""

    def __init__(self, params: CellParams | None = None):
        self.params = params or CellParams()

    # ------------------------------------------------------------------
    # Nominal behaviour
    # ------------------------------------------------------------------
    def nominal_margins(self) -> CopyMargins:
        p = self.params
        sense, restore = self._margins(
            np.array([p.c_cell_ff]),
            np.array([p.c_bitline_ff]),
            np.array([p.r_on_kohm]),
            np.array([p.sense_offset_mv]),
        )
        return CopyMargins(float(sense[0]), float(restore[0]))

    def bitline_swing_v(self) -> float:
        """Nominal charge-sharing deviation seen by the sense amp."""
        p = self.params
        return (p.vdd / 2.0) * p.c_cell_ff / (p.c_cell_ff + p.c_bitline_ff)

    # ------------------------------------------------------------------
    # Monte-Carlo sampling
    # ------------------------------------------------------------------
    def sample_failures(
        self,
        variation_pct: float,
        trials: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Boolean failure array for ``trials`` sampled copies."""
        if variation_pct < 0:
            raise ValueError("variation_pct must be >= 0")
        if variation_pct == 0:
            nominal = self.nominal_margins()
            return np.full(trials, nominal.failed)
        p = self.params
        rel = (variation_pct / 100.0) * p.sigma_per_bound
        rel *= (variation_pct / p.reference_pct) ** (
            p.compounding_exponent - 1.0
        )

        def draw(nominal: float) -> np.ndarray:
            return nominal * (1.0 + rng.normal(0.0, rel, size=trials))

        sense, restore = self._margins(
            draw(p.c_cell_ff),
            draw(p.c_bitline_ff),
            draw(p.r_on_kohm),
            draw(p.sense_offset_mv),
        )
        return (sense <= 0.0) | (restore <= 0.0)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _margins(
        self,
        c_cell: np.ndarray,
        c_bitline: np.ndarray,
        r_on: np.ndarray,
        offset_mv: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        p = self.params
        c_cell = np.maximum(c_cell, 1e-3)
        c_bitline = np.maximum(c_bitline, 1e-3)
        r_on = np.maximum(r_on, 1e-3)
        swing = (p.vdd / 2.0) * c_cell / (c_cell + c_bitline)
        sense_margin = swing - offset_mv * 1e-3
        tau_ns = r_on * c_cell * 1e-3  # kOhm * fF -> ns
        restore_margin = p.t_restore_ns / tau_ns - p.settle_ratio_min
        return sense_margin, restore_margin
