"""DRAM device model: geometry, timing, energy, RowHammer, refresh."""

from .address import AddressMapper, ByteAddress, ChannelInterleaver, RowAddress
from .config import DRAMConfig
from .device import DRAMDevice
from .energy import DDR4_ENERGY, EnergyParams
from .rowhammer import BitFlip, Disturbance, RowHammerModel, double_sided_pair
from .stats import EnergyBreakdown, MemoryStats
from .subarray import Bank, Subarray
from .timing import (
    DDR3_1600,
    DDR4_2400,
    LPDDR4_3200,
    TRH_BY_GENERATION,
    TimingParams,
    trh_table,
)
from .vulnerability import VulnerabilityMap

__all__ = [
    "AddressMapper",
    "Bank",
    "BitFlip",
    "ByteAddress",
    "ChannelInterleaver",
    "DDR3_1600",
    "DDR4_2400",
    "DDR4_ENERGY",
    "Disturbance",
    "DRAMConfig",
    "DRAMDevice",
    "EnergyBreakdown",
    "EnergyParams",
    "LPDDR4_3200",
    "MemoryStats",
    "RowAddress",
    "RowHammerModel",
    "Subarray",
    "TimingParams",
    "TRH_BY_GENERATION",
    "VulnerabilityMap",
    "double_sided_pair",
    "trh_table",
]
