"""DRAM energy parameters.

All energies are in nanojoules.  The constants are calibrated against
the RowClone paper's headline numbers: an in-DRAM intra-subarray copy of
one row is ~11.6x faster and ~74.4x more energy-efficient than copying
the same row over the memory channel (Seshadri et al., MICRO 2013).
``benchmarks/bench_rowclone_savings.py`` regenerates both factors from
these constants and the timing model.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["EnergyParams", "DDR4_ENERGY"]


@dataclass(frozen=True)
class EnergyParams:
    """Per-operation energy costs for one DRAM device.

    Attributes:
        e_act: One ACT + implicit restore of a full row.
        e_pre: One PRE (bitline precharge).
        e_rd_burst: One 64-byte read burst, array side.
        e_wr_burst: One 64-byte write burst, array side.
        e_io_burst: Channel I/O + on-die termination for one 64-byte
            burst (paid only when data crosses the channel).
        e_cpu_burst: Core + cache-hierarchy energy for the CPU to move
            one 64-byte burst during a ``memcpy``-style copy loop.
        e_ref: One REF command (refreshes one row group).
        e_lock_lookup: One lock-table SRAM lookup (DRAM-Locker).
        p_background_mw: Background power in milliwatts, charged per
            nanosecond of simulated time.
    """

    e_act: float = 18.0
    e_pre: float = 2.2
    e_rd_burst: float = 1.6
    e_wr_burst: float = 1.7
    e_io_burst: float = 5.1
    e_cpu_burst: float = 4.2
    e_ref: float = 26.0
    e_lock_lookup: float = 0.011
    p_background_mw: float = 108.0

    def background_nj(self, elapsed_ns: float) -> float:
        """Background energy accrued over ``elapsed_ns`` nanoseconds."""
        return self.p_background_mw * 1e-3 * elapsed_ns

    def channel_copy_nj(self, row_bytes: int) -> float:
        """Energy to copy one row over the memory channel (read + write)."""
        bursts = row_bytes // 64
        per_burst = (
            self.e_rd_burst
            + self.e_wr_burst
            + 2 * self.e_io_burst
            + 2 * self.e_cpu_burst
        )
        return 2 * (self.e_act + self.e_pre) + bursts * per_burst

    def rowclone_copy_nj(self) -> float:
        """Energy of one intra-subarray RowClone copy (ACT-ACT-PRE)."""
        return 2 * self.e_act + self.e_pre


DDR4_ENERGY = EnergyParams()
