"""Subarray and bank data planes.

Row contents are NumPy ``uint8`` arrays, allocated lazily so that large
geometries (the 32 GB Table I configuration) cost nothing until a row is
actually touched.
"""

from __future__ import annotations

import numpy as np

from .config import DRAMConfig

__all__ = ["Subarray", "Bank"]


class Subarray:
    """One 2D mat of DRAM rows; the unit of RowClone FPM copies."""

    def __init__(self, config: DRAMConfig):
        self.config = config
        self._rows: dict[int, np.ndarray] = {}

    def _materialize(self, local_row: int) -> np.ndarray:
        self._check(local_row)
        row = self._rows.get(local_row)
        if row is None:
            row = np.zeros(self.config.row_bytes, dtype=np.uint8)
            self._rows[local_row] = row
        return row

    def read_row(self, local_row: int, copy: bool = True) -> np.ndarray:
        """Row contents; pass ``copy=False`` for a read-only fast path."""
        row = self._materialize(local_row)
        return row.copy() if copy else row

    def write_row(self, local_row: int, data: np.ndarray) -> None:
        row = self._materialize(local_row)
        data = np.asarray(data, dtype=np.uint8)
        if data.shape != row.shape:
            raise ValueError(
                f"row data must be {row.shape[0]} bytes, got {data.shape}"
            )
        row[:] = data

    def copy_row(self, src_local: int, dst_local: int) -> None:
        """RowClone FPM: overwrite ``dst`` with ``src`` inside the mat."""
        src = self._materialize(src_local)
        dst = self._materialize(dst_local)
        dst[:] = src

    def flip_bits(self, local_row: int, bit_positions) -> None:
        """XOR-toggle the given bit positions of one row."""
        row = self._materialize(local_row)
        for bit in np.atleast_1d(np.asarray(bit_positions, dtype=np.int64)):
            byte_index, bit_index = divmod(int(bit), 8)
            row[byte_index] ^= np.uint8(1 << bit_index)

    def allocated_rows(self) -> list[int]:
        """Local indices of rows that have been materialized."""
        return sorted(self._rows)

    def _check(self, local_row: int) -> None:
        if not 0 <= local_row < self.config.rows_per_subarray:
            raise ValueError(f"local row {local_row} out of range")


class Bank:
    """A group of subarrays sharing one row buffer (open-row state)."""

    def __init__(self, config: DRAMConfig):
        self.config = config
        self.subarrays = [Subarray(config) for _ in range(config.subarrays_per_bank)]
        #: Global row index currently latched in the row buffer, if any.
        self.open_row: int | None = None

    def subarray_of(self, local_bank_row: int) -> tuple[Subarray, int]:
        """Map a bank-local row number to ``(subarray, subarray-local row)``."""
        if not 0 <= local_bank_row < self.config.rows_per_bank:
            raise ValueError(f"bank row {local_bank_row} out of range")
        index, local = divmod(local_bank_row, self.config.rows_per_subarray)
        return self.subarrays[index], local
