"""RowHammer disturbance model.

This is the abstraction stated in the paper's threat model (Section
III): every row has a threshold ``TRH``; once an aggressor row is
activated ``TRH`` times within a refresh window it imposes bit-flips on
its two adjacent victim rows.  Optionally, a Half-Double mode (Kogler et
al., USENIX Security 2022) also disturbs distance-2 victims at a higher
threshold, which is the breakthrough pattern the paper cites against
victim-focused defenses.

Counters are aggressor-centric and reset when the refresh walker passes
the row.  Physically the charge loss accumulates on the *victim*, but
the refresh walker visits adjacent rows back-to-back, so the two views
coincide up to one tREFI -- a simplification recorded in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .. import obs
from .address import AddressMapper
from .config import DRAMConfig
from .vulnerability import VulnerabilityMap

__all__ = ["BitFlip", "Disturbance", "RowHammerModel"]


@dataclass(frozen=True)
class BitFlip:
    """One observed bit flip in a victim row."""

    row: int
    bit: int
    time_ns: float


@dataclass
class Disturbance:
    """All flips triggered by one threshold crossing."""

    aggressor: int
    victims: list[int]
    flips: list[BitFlip] = field(default_factory=list)


class RowHammerModel:
    """Tracks activations and produces disturbance events."""

    def __init__(
        self,
        config: DRAMConfig,
        mapper: AddressMapper,
        vulnerability: VulnerabilityMap,
        trh: int,
        half_double_factor: float | None = None,
    ):
        if trh <= 0:
            raise ValueError("trh must be positive")
        if half_double_factor is not None and half_double_factor <= 1.0:
            raise ValueError("half_double_factor must exceed 1.0")
        self.config = config
        self.mapper = mapper
        self.vulnerability = vulnerability
        self.trh = trh
        self.half_double_factor = half_double_factor
        self.counters: dict[int, int] = {}
        self.total_disturbances = 0

    # ------------------------------------------------------------------
    # Activation accounting
    # ------------------------------------------------------------------
    def on_activate(self, row_index: int, now_ns: float) -> list[Disturbance]:
        """Record one ACT of ``row_index``; return triggered disturbances."""
        count = self.counters.get(row_index, 0) + 1
        self.counters[row_index] = count

        events: list[Disturbance] = []
        if count % self.trh == 0:
            events.append(self._disturb(row_index, now_ns, radius=1))
        if self.half_double_factor is not None:
            hd_threshold = int(self.trh * self.half_double_factor)
            if hd_threshold > 0 and count % hd_threshold == 0:
                events.append(self._disturb(row_index, now_ns, radius=2))
        return [event for event in events if event.flips or event.victims]

    def activation_count(self, row_index: int) -> int:
        """Activations of a row since its last refresh."""
        return self.counters.get(row_index, 0)

    def quiet_span(self, row_index: int) -> int:
        """ACTs of ``row_index`` guaranteed not to cross a disturbance
        threshold (TRH or the Half-Double threshold), in closed form.

        The bulk execution engine uses this as a chunk bound: the
        crossing ACT itself always runs on the scalar path so flips
        land on exactly the same request index as a scalar loop.
        """
        count = self.counters.get(row_index, 0)
        away = self.trh - (count % self.trh) - 1
        if self.half_double_factor is not None:
            hd_threshold = int(self.trh * self.half_double_factor)
            if hd_threshold > 0:
                away = min(away, hd_threshold - (count % hd_threshold) - 1)
        return away

    def charge_activations(self, row_index: int, count: int) -> None:
        """Closed-form bulk counter bump for ``count`` ACTs; the caller
        guarantees ``count <= quiet_span(row_index)`` so no disturbance
        event can fall inside the run."""
        if count:
            self.counters[row_index] = self.counters.get(row_index, 0) + count

    # ------------------------------------------------------------------
    # Refresh interactions
    # ------------------------------------------------------------------
    def reset_rows(self, start: int, end: int) -> None:
        """The refresh walker refreshed global rows ``[start, end)``."""
        if end - start >= len(self.counters):
            self.counters = {
                row: count
                for row, count in self.counters.items()
                if not start <= row < end
            }
        else:
            for row in range(start, end):
                self.counters.pop(row, None)

    def reset_all(self) -> None:
        """Full refresh window elapsed with no tracked activity left."""
        self.counters.clear()

    def neutralize_victim(self, victim_index: int) -> None:
        """A defense refreshed ``victim_index``; its aggressors restart.

        With aggressor-centric counters, clearing the accumulated
        disturbance of a victim is modelled by resetting the counters of
        every row that could have been hammering it.
        """
        for aggressor in self.mapper.neighbors(victim_index, radius=2):
            self.counters.pop(aggressor, None)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _disturb(self, aggressor: int, now_ns: float, radius: int) -> Disturbance:
        near = set(self.mapper.neighbors(aggressor, radius=radius - 1)) if radius > 1 else set()
        ring = [
            victim
            for victim in self.mapper.neighbors(aggressor, radius=radius)
            if victim not in near and victim != aggressor
        ]
        event = Disturbance(aggressor=aggressor, victims=ring)
        for victim in ring:
            for bit in self.vulnerability.flippable_bits(victim):
                event.flips.append(BitFlip(row=victim, bit=int(bit), time_ns=now_ns))
        if event.flips:
            self.total_disturbances += 1
        tel = obs.ACTIVE
        if tel is not None:
            tel.metrics.inc("rowhammer.trh_crossings")
            tel.audit.emit(
                "trh-crossing",
                now_ns=now_ns,
                aggressor=aggressor,
                radius=radius,
                flips=len(event.flips),
            )
        return event


def double_sided_pair(mapper: AddressMapper, victim_index: int) -> list[int]:
    """The classic double-sided aggressor pair around one victim row."""
    return mapper.neighbors(victim_index, radius=1)
