"""The DRAM device model.

The device exposes two planes:

* a **command plane** (``activate`` / ``precharge`` / ``read_burst`` /
  ``write_burst`` / ``rowclone`` / ``advance``) that costs energy,
  advances RowHammer counters and can trigger disturbance bit-flips;
  the batched twins ``read_burst_run`` / ``write_burst_run`` account a
  whole run of same-row bursts in one call (used by
  :meth:`repro.controller.MemoryController.execute_batch`) with
  bit-identical stats;
* a **data plane** (``peek_*`` / ``poke_*``) that reads or writes stored
  bytes with no simulated cost -- used to load initial contents (e.g.
  DNN weights) and to observe ground truth in experiments.

Attacks and workloads must go through the command plane (normally via
:class:`repro.controller.MemoryController`) so that protection effects
are emergent rather than scripted.
"""

from __future__ import annotations

from typing import Callable, Iterable

import numpy as np

from .address import AddressMapper
from .config import DRAMConfig
from .energy import DDR4_ENERGY, EnergyParams
from .refresh import RefreshEngine
from .rowhammer import BitFlip, Disturbance, RowHammerModel
from .stats import MemoryStats, walk_add_many
from .subarray import Bank, Subarray
from .timing import DDR4_2400, TimingParams
from .vulnerability import VulnerabilityMap

__all__ = ["DRAMDevice"]

FlipListener = Callable[[BitFlip], None]


class DRAMDevice:
    """One simulated DRAM memory system."""

    def __init__(
        self,
        config: DRAMConfig,
        timing: TimingParams = DDR4_2400,
        energy: EnergyParams = DDR4_ENERGY,
        vulnerability: VulnerabilityMap | None = None,
        trh: int | None = None,
        half_double_factor: float | None = None,
    ):
        self.config = config
        self.timing = timing if trh is None else timing.with_trh(trh)
        self.energy = energy
        self.mapper = AddressMapper(config)
        self.banks = [Bank(config) for _ in range(config.banks)]
        self.vulnerability = vulnerability or VulnerabilityMap(config)
        self.rowhammer = RowHammerModel(
            config,
            self.mapper,
            self.vulnerability,
            trh=self.timing.trh,
            half_double_factor=half_double_factor,
        )
        self.stats = MemoryStats()
        self.refresh = RefreshEngine(self)
        self.now_ns = 0.0
        self._flip_listeners: list[FlipListener] = []

    # ------------------------------------------------------------------
    # Location helpers
    # ------------------------------------------------------------------
    def locate(self, row_index: int) -> tuple[Bank, Subarray, int]:
        """Resolve a global row index to bank, subarray and local row."""
        addr = self.mapper.row_address(row_index)
        bank = self.banks[addr.bank]
        subarray = bank.subarrays[addr.subarray]
        return bank, subarray, addr.row

    # ------------------------------------------------------------------
    # Clock & refresh
    # ------------------------------------------------------------------
    def advance(self, elapsed_ns: float) -> None:
        """Advance simulated time; runs refresh and background energy."""
        if elapsed_ns < 0:
            raise ValueError("time cannot run backwards")
        self.now_ns += elapsed_ns
        self.stats.energy.background += self.energy.background_nj(elapsed_ns)
        self.refresh.tick(self.now_ns)

    # ------------------------------------------------------------------
    # Command plane
    # ------------------------------------------------------------------
    def activate(self, row_index: int) -> list[BitFlip]:
        """ACT one row: latch it, hammer-account it, apply disturbances."""
        addr = self.mapper.row_address(row_index)
        bank = self.banks[addr.bank]
        bank.open_row = row_index
        self.stats.activates += 1
        self.stats.energy.activate += self.energy.e_act
        events = self.rowhammer.on_activate(row_index, self.now_ns)
        return self._apply_disturbances(events)

    def precharge(self, bank_index: int) -> None:
        """PRE one bank: close its open row."""
        bank = self.banks[bank_index]
        bank.open_row = None
        self.stats.precharges += 1
        self.stats.energy.precharge += self.energy.e_pre

    def read_burst(self, row_index: int, column: int) -> np.ndarray:
        """Transfer one 64-byte burst from the open row to the channel."""
        self._require_open(row_index)
        self.stats.reads += 1
        self.stats.energy.read += self.energy.e_rd_burst
        self.stats.energy.io += self.energy.e_io_burst
        return self.peek_bytes(row_index, column, 64)

    def write_burst(self, row_index: int, column: int, data: np.ndarray) -> None:
        """Transfer one 64-byte burst from the channel into the open row."""
        self._require_open(row_index)
        self.stats.writes += 1
        self.stats.energy.write += self.energy.e_wr_burst
        self.stats.energy.io += self.energy.e_io_burst
        self.poke_bytes(row_index, column, data)

    def read_burst_run(self, row_index: int, column: int, bursts: int) -> None:
        """Serve ``bursts`` back-to-back 64-byte read bursts of one open row.

        Accounting-equivalent to ``bursts`` :meth:`read_burst` calls over
        the controller's clamped column walk (one ACT serving N column
        reads), without materialising the per-burst copies nobody
        consumes.  Energy is accumulated burst-by-burst so the totals are
        bit-identical to the scalar loop.
        """
        cap = self.config.row_bytes - 64
        if min(column, cap) < 0:
            raise ValueError("byte range does not fit in the row")
        self._require_open(row_index)
        stats = self.stats
        stats.reads += bursts
        breakdown = stats.energy
        breakdown.read, breakdown.io = walk_add_many(
            (breakdown.read, breakdown.io),
            (self.energy.e_rd_burst, self.energy.e_io_burst),
            bursts,
        )

    def write_burst_run(
        self, row_index: int, column: int, bursts: int, data: np.ndarray
    ) -> None:
        """Store the same 64-byte ``data`` burst at ``bursts`` consecutive
        (clamped) column offsets of one open row -- the bulk twin of
        :meth:`write_burst`, with bit-identical stats and stored bytes."""
        data = np.asarray(data, dtype=np.uint8).ravel()
        cap = self.config.row_bytes - data.size
        if min(column, cap) < 0:
            raise ValueError("byte range does not fit in the row")
        self._require_open(row_index)
        stats = self.stats
        stats.writes += bursts
        breakdown = stats.energy
        breakdown.write, breakdown.io = walk_add_many(
            (breakdown.write, breakdown.io),
            (self.energy.e_wr_burst, self.energy.e_io_burst),
            bursts,
        )
        row = self.peek_row(row_index, copy=False)
        for burst in range(bursts):
            start = min(column + burst * 64, cap)
            row[start : start + data.size] = data

    def rowclone(self, src_index: int, dst_index: int) -> list[BitFlip]:
        """Intra-subarray RowClone FPM copy (ACT src, ACT dst, PRE).

        Both activations are RowHammer-accounted: defenses that copy
        rows (SHADOW, RRS, DRAM-Locker's SWAP) hammer the array too.
        """
        if not self.mapper.same_subarray(src_index, dst_index):
            raise ValueError(
                "RowClone FPM requires source and destination in one subarray"
            )
        if src_index == dst_index:
            raise ValueError("RowClone source and destination must differ")
        flips = self.activate(src_index)
        flips += self.activate(dst_index)
        _, subarray, src_local = self.locate(src_index)
        dst_local = self.mapper.row_address(dst_index).row
        subarray.copy_row(src_local, dst_local)
        self.precharge(self.mapper.row_address(src_index).bank)
        self.stats.rowclones += 1
        # ACT/PRE energy was charged by the primitives above; add the
        # residual restore energy so one clone totals rowclone_copy_nj.
        residual = self.energy.rowclone_copy_nj() - 2 * self.energy.e_act - self.energy.e_pre
        self.stats.energy.rowclone += max(0.0, residual)
        return flips

    # ------------------------------------------------------------------
    # Data plane (no simulated cost)
    # ------------------------------------------------------------------
    def peek_row(self, row_index: int, copy: bool = True) -> np.ndarray:
        _, subarray, local = self.locate(row_index)
        return subarray.read_row(local, copy=copy)

    def poke_row(self, row_index: int, data: np.ndarray) -> None:
        _, subarray, local = self.locate(row_index)
        subarray.write_row(local, data)

    def peek_bytes(self, row_index: int, column: int, length: int) -> np.ndarray:
        if not 0 <= column <= self.config.row_bytes - length:
            raise ValueError("byte range does not fit in the row")
        row = self.peek_row(row_index, copy=False)
        return row[column : column + length].copy()

    def poke_bytes(self, row_index: int, column: int, data) -> None:
        data = np.asarray(data, dtype=np.uint8).ravel()
        if not 0 <= column <= self.config.row_bytes - data.size:
            raise ValueError("byte range does not fit in the row")
        row = self.peek_row(row_index, copy=False)
        row[column : column + data.size] = data

    def flip_bit(self, row_index: int, bit: int) -> None:
        """Directly toggle one stored bit (test/ground-truth helper)."""
        _, subarray, local = self.locate(row_index)
        subarray.flip_bits(local, [bit])

    # ------------------------------------------------------------------
    # Flip listeners
    # ------------------------------------------------------------------
    def add_flip_listener(self, listener: FlipListener) -> None:
        """Register a callback invoked for every disturbance bit-flip."""
        self._flip_listeners.append(listener)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _apply_disturbances(self, events: Iterable[Disturbance]) -> list[BitFlip]:
        applied: list[BitFlip] = []
        for event in events:
            if event.flips:
                self.stats.disturbances += 1
            for flip in event.flips:
                _, subarray, local = self.locate(flip.row)
                subarray.flip_bits(local, [flip.bit])
                self.stats.bit_flips += 1
                applied.append(flip)
                for listener in self._flip_listeners:
                    listener(flip)
        return applied

    def _require_open(self, row_index: int) -> None:
        addr = self.mapper.row_address(row_index)
        if self.banks[addr.bank].open_row != row_index:
            raise RuntimeError(
                f"row {row_index} is not open in bank {addr.bank}; "
                "issue ACT first (the controller does this for you)"
            )
