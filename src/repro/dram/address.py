"""Physical address mapping.

Rows are identified two ways throughout the code base:

* a :class:`RowAddress` triple ``(bank, subarray, row)`` used by the
  device model, and
* a flat *global row index* in ``[0, config.total_rows)`` used by the
  RowHammer counters, the lock-table, and the defenses.

:class:`AddressMapper` converts between the two, and between full byte
addresses and ``(row, column)`` pairs.  The mapping is row-interleaved
(bank index in the low bits of the row number) like a real controller,
so consecutive rows of one subarray are *physically adjacent* -- which
is exactly the adjacency the RowHammer model disturbs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, NamedTuple

from .config import DRAMConfig

__all__ = ["RowAddress", "ByteAddress", "AddressMapper"]


class RowAddress(NamedTuple):
    """Hierarchical address of one DRAM row."""

    bank: int
    subarray: int
    row: int


@dataclass(frozen=True)
class ByteAddress:
    """A fully-resolved physical byte location."""

    row: RowAddress
    column: int


class AddressMapper:
    """Bidirectional address translation bound to one :class:`DRAMConfig`."""

    def __init__(self, config: DRAMConfig):
        self.config = config

    # ------------------------------------------------------------------
    # Row index <-> RowAddress
    # ------------------------------------------------------------------
    def row_index(self, addr: RowAddress | tuple[int, int, int]) -> int:
        """Flatten a row address to a global row index."""
        cfg = self.config
        if not isinstance(addr, RowAddress):
            addr = RowAddress(*addr)
        self._check(addr)
        return (
            addr.bank * cfg.rows_per_bank
            + addr.subarray * cfg.rows_per_subarray
            + addr.row
        )

    def row_address(self, index: int) -> RowAddress:
        """Expand a global row index back to ``(bank, subarray, row)``."""
        cfg = self.config
        if not 0 <= index < cfg.total_rows:
            raise ValueError(f"row index {index} out of range")
        bank, rest = divmod(index, cfg.rows_per_bank)
        subarray, row = divmod(rest, cfg.rows_per_subarray)
        return RowAddress(bank, subarray, row)

    # ------------------------------------------------------------------
    # Byte address <-> (row, column)
    # ------------------------------------------------------------------
    def byte_address(self, physical: int) -> ByteAddress:
        """Resolve a flat physical byte address."""
        cfg = self.config
        if not 0 <= physical < cfg.capacity_bytes:
            raise ValueError(f"physical address {physical:#x} out of range")
        row_index, column = divmod(physical, cfg.row_bytes)
        return ByteAddress(self.row_address(row_index), column)

    def physical(self, addr: ByteAddress) -> int:
        """Flatten a :class:`ByteAddress` to a physical byte address."""
        if not 0 <= addr.column < self.config.row_bytes:
            raise ValueError(f"column {addr.column} out of range")
        return self.row_index(addr.row) * self.config.row_bytes + addr.column

    # ------------------------------------------------------------------
    # Adjacency
    # ------------------------------------------------------------------
    def neighbors(self, index: int, radius: int = 1) -> list[int]:
        """Global indices of rows physically adjacent to ``index``.

        Adjacency never crosses a subarray boundary: the sense-amplifier
        stripes between subarrays isolate the disturbance, which is also
        why RowClone FPM and SHADOW shuffling are intra-subarray.
        """
        if radius < 1:
            raise ValueError("radius must be >= 1")
        cfg = self.config
        addr = self.row_address(index)
        result = []
        for offset in range(-radius, radius + 1):
            if offset == 0:
                continue
            local = addr.row + offset
            if 0 <= local < cfg.rows_per_subarray:
                result.append(
                    self.row_index(RowAddress(addr.bank, addr.subarray, local))
                )
        return result

    def aggressors_of(self, victims: Iterable[int], radius: int = 1) -> set[int]:
        """Rows that could disturb any of ``victims`` when hammered.

        This is the set DRAM-Locker's protection planner locks: every row
        within ``radius`` of a protected row, excluding the protected
        rows themselves (the paper deliberately leaves hot data unlocked
        so normal execution needs no unlock).
        """
        victim_set = set(victims)
        aggressors: set[int] = set()
        for victim in victim_set:
            aggressors.update(self.neighbors(victim, radius=radius))
        return aggressors - victim_set

    def same_subarray(self, a: int, b: int) -> bool:
        """True when two global rows live in the same subarray."""
        addr_a = self.row_address(a)
        addr_b = self.row_address(b)
        return (addr_a.bank, addr_a.subarray) == (addr_b.bank, addr_b.subarray)

    def reserved_rows(self, bank: int, subarray: int) -> list[int]:
        """Global indices of the reserved swap-pool rows of one subarray."""
        cfg = self.config
        first = cfg.usable_rows_per_subarray
        return [
            self.row_index(RowAddress(bank, subarray, local))
            for local in range(first, cfg.rows_per_subarray)
        ]

    def _check(self, addr: RowAddress) -> None:
        cfg = self.config
        if not 0 <= addr.bank < cfg.banks:
            raise ValueError(f"bank {addr.bank} out of range")
        if not 0 <= addr.subarray < cfg.subarrays_per_bank:
            raise ValueError(f"subarray {addr.subarray} out of range")
        if not 0 <= addr.row < cfg.rows_per_subarray:
            raise ValueError(f"row {addr.row} out of range")
