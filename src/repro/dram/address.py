"""Physical address mapping.

Rows are identified two ways throughout the code base:

* a :class:`RowAddress` triple ``(bank, subarray, row)`` used by the
  device model, and
* a flat *global row index* in ``[0, config.total_rows)`` used by the
  RowHammer counters, the lock-table, and the defenses.

:class:`AddressMapper` converts between the two, and between full byte
addresses and ``(row, column)`` pairs.  The mapping is row-interleaved
(bank index in the low bits of the row number) like a real controller,
so consecutive rows of one subarray are *physically adjacent* -- which
is exactly the adjacency the RowHammer model disturbs.

Above the per-channel mapper sits :class:`ChannelInterleaver`, the
policy layer of the multi-channel serving system: it spreads a flat
*system row* space ``[0, config.system_rows)`` over
``config.channels`` independent channels, each of which then resolves
its local row through its own :class:`AddressMapper`.  Adjacency (and
therefore RowHammer disturbance and DRAM-Locker's aggressors) is a
strictly per-channel notion; the interleaver only decides placement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, NamedTuple

from .config import DRAMConfig

__all__ = ["RowAddress", "ByteAddress", "AddressMapper", "ChannelInterleaver"]


class RowAddress(NamedTuple):
    """Hierarchical address of one DRAM row."""

    bank: int
    subarray: int
    row: int


@dataclass(frozen=True)
class ByteAddress:
    """A fully-resolved physical byte location."""

    row: RowAddress
    column: int


class AddressMapper:
    """Bidirectional address translation bound to one :class:`DRAMConfig`."""

    def __init__(self, config: DRAMConfig):
        self.config = config

    # ------------------------------------------------------------------
    # Row index <-> RowAddress
    # ------------------------------------------------------------------
    def row_index(self, addr: RowAddress | tuple[int, int, int]) -> int:
        """Flatten a row address to a global row index."""
        cfg = self.config
        if not isinstance(addr, RowAddress):
            addr = RowAddress(*addr)
        self._check(addr)
        return (
            addr.bank * cfg.rows_per_bank
            + addr.subarray * cfg.rows_per_subarray
            + addr.row
        )

    def row_address(self, index: int) -> RowAddress:
        """Expand a global row index back to ``(bank, subarray, row)``."""
        cfg = self.config
        if not 0 <= index < cfg.total_rows:
            raise ValueError(f"row index {index} out of range")
        bank, rest = divmod(index, cfg.rows_per_bank)
        subarray, row = divmod(rest, cfg.rows_per_subarray)
        return RowAddress(bank, subarray, row)

    # ------------------------------------------------------------------
    # Byte address <-> (row, column)
    # ------------------------------------------------------------------
    def byte_address(self, physical: int) -> ByteAddress:
        """Resolve a flat physical byte address."""
        cfg = self.config
        if not 0 <= physical < cfg.capacity_bytes:
            raise ValueError(f"physical address {physical:#x} out of range")
        row_index, column = divmod(physical, cfg.row_bytes)
        return ByteAddress(self.row_address(row_index), column)

    def physical(self, addr: ByteAddress) -> int:
        """Flatten a :class:`ByteAddress` to a physical byte address."""
        if not 0 <= addr.column < self.config.row_bytes:
            raise ValueError(f"column {addr.column} out of range")
        return self.row_index(addr.row) * self.config.row_bytes + addr.column

    # ------------------------------------------------------------------
    # Adjacency
    # ------------------------------------------------------------------
    def neighbors(self, index: int, radius: int = 1) -> list[int]:
        """Global indices of rows physically adjacent to ``index``.

        Adjacency never crosses a subarray boundary: the sense-amplifier
        stripes between subarrays isolate the disturbance, which is also
        why RowClone FPM and SHADOW shuffling are intra-subarray.
        """
        if radius < 1:
            raise ValueError("radius must be >= 1")
        cfg = self.config
        addr = self.row_address(index)
        result = []
        for offset in range(-radius, radius + 1):
            if offset == 0:
                continue
            local = addr.row + offset
            if 0 <= local < cfg.rows_per_subarray:
                result.append(
                    self.row_index(RowAddress(addr.bank, addr.subarray, local))
                )
        return result

    def aggressors_of(self, victims: Iterable[int], radius: int = 1) -> set[int]:
        """Rows that could disturb any of ``victims`` when hammered.

        This is the set DRAM-Locker's protection planner locks: every row
        within ``radius`` of a protected row, excluding the protected
        rows themselves (the paper deliberately leaves hot data unlocked
        so normal execution needs no unlock).
        """
        victim_set = set(victims)
        aggressors: set[int] = set()
        for victim in victim_set:
            aggressors.update(self.neighbors(victim, radius=radius))
        return aggressors - victim_set

    def same_subarray(self, a: int, b: int) -> bool:
        """True when two global rows live in the same subarray."""
        addr_a = self.row_address(a)
        addr_b = self.row_address(b)
        return (addr_a.bank, addr_a.subarray) == (addr_b.bank, addr_b.subarray)

    def reserved_rows(self, bank: int, subarray: int) -> list[int]:
        """Global indices of the reserved swap-pool rows of one subarray."""
        cfg = self.config
        first = cfg.usable_rows_per_subarray
        return [
            self.row_index(RowAddress(bank, subarray, local))
            for local in range(first, cfg.rows_per_subarray)
        ]

    def _check(self, addr: RowAddress) -> None:
        cfg = self.config
        if not 0 <= addr.bank < cfg.banks:
            raise ValueError(f"bank {addr.bank} out of range")
        if not 0 <= addr.subarray < cfg.subarrays_per_bank:
            raise ValueError(f"subarray {addr.subarray} out of range")
        if not 0 <= addr.row < cfg.rows_per_subarray:
            raise ValueError(f"row {addr.row} out of range")


class ChannelInterleaver:
    """System-row placement across the channels of one memory system.

    Policies:

    * ``"row"`` (default) -- consecutive system rows round-robin across
      channels (``channel = row % channels``), so any contiguous
      workload -- a tenant partition, a weight-streaming sweep --
      spreads evenly and aggregate throughput scales with the channel
      count;
    * ``"block"`` -- contiguous blocks (``channel = row //
      rows_per_channel``), the isolation placement: one tenant's
      contiguous partition lives entirely on one channel.

    With ``channels == 1`` both policies are the identity, which is the
    equivalence :class:`~repro.serving.ShardedMemorySystem` leans on:
    a single-channel sharded system is observationally identical to a
    bare :class:`~repro.controller.MemoryController`.
    """

    POLICIES = ("row", "block")

    def __init__(self, config: DRAMConfig, policy: str = "row"):
        if policy not in self.POLICIES:
            raise ValueError(
                f"unknown interleaving policy {policy!r}; "
                f"choose from {self.POLICIES}"
            )
        self.config = config
        self.policy = policy
        self.channels = config.channels
        self.rows_per_channel = config.total_rows
        self.system_rows = config.system_rows

    def locate(self, system_row: int) -> tuple[int, int]:
        """Resolve a system row to ``(channel, per-channel row)``."""
        if not 0 <= system_row < self.system_rows:
            raise ValueError(f"system row {system_row} out of range")
        if self.policy == "row":
            return (
                system_row % self.channels,
                system_row // self.channels,
            )
        return divmod(system_row, self.rows_per_channel)

    def channel_of(self, system_row: int) -> int:
        """The channel serving one system row."""
        return self.locate(system_row)[0]

    def system_row(self, channel: int, local_row: int) -> int:
        """Inverse of :meth:`locate`."""
        if not 0 <= channel < self.channels:
            raise ValueError(f"channel {channel} out of range")
        if not 0 <= local_row < self.rows_per_channel:
            raise ValueError(f"local row {local_row} out of range")
        if self.policy == "row":
            return local_row * self.channels + channel
        return channel * self.rows_per_channel + local_row
