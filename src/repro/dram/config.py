"""DRAM geometry configuration.

A :class:`DRAMConfig` pins down the bank/subarray/row organisation that
the device model, the address mapper, the defenses, and the Table I
overhead calculators all share.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["DRAMConfig"]

KIB = 1024
MIB = 1024 * 1024
GIB = 1024 * 1024 * 1024


@dataclass(frozen=True)
class DRAMConfig:
    """Geometry of one simulated DRAM memory system.

    The hierarchy is ``channel -> device -> bank -> subarray -> row``.
    Ranks are folded into the bank count: the paper's evaluation uses a
    16-bank DDR4 view, and nothing in the mechanism depends on
    rank-level parallelism.  ``channels`` defaults to 1 (the paper's
    single-channel view); every per-device quantity below
    (``total_rows``, ``capacity_bytes``, ...) stays **per channel**, so
    single-channel configs and their committed baselines are unchanged.
    Multi-channel systems are composed by
    :class:`repro.serving.ShardedMemorySystem`, which builds one device
    per channel from :meth:`channel_config` and interleaves system rows
    via :class:`repro.dram.address.ChannelInterleaver`.

    Attributes:
        name: Identifier for reports.
        channels: Independent memory channels, each with its own device,
            controller, clock, and (optionally) DRAM-Locker lock table.
        banks: Number of banks per channel.
        subarrays_per_bank: Subarrays per bank; RowClone FPM copies are
            only possible *within* one subarray.
        rows_per_subarray: DRAM rows per subarray (typically 512).
        row_bytes: Bytes per row (the unit of ACT, RowClone and
            RowHammer disturbance).
        reserved_rows_per_subarray: Rows at the top of each subarray set
            aside as the DRAM-Locker buffer row plus the free-row pool
            used by SWAP (also used by SHADOW as shuffle space).
    """

    name: str
    banks: int = 16
    subarrays_per_bank: int = 16
    rows_per_subarray: int = 512
    row_bytes: int = 8 * KIB
    reserved_rows_per_subarray: int = 8
    channels: int = 1

    def __post_init__(self) -> None:
        if self.channels <= 0:
            raise ValueError("channels must be positive")
        if self.banks <= 0 or self.subarrays_per_bank <= 0:
            raise ValueError("banks and subarrays_per_bank must be positive")
        if self.rows_per_subarray <= 0 or self.row_bytes <= 0:
            raise ValueError("rows_per_subarray and row_bytes must be positive")
        if not 0 <= self.reserved_rows_per_subarray < self.rows_per_subarray:
            raise ValueError(
                "reserved_rows_per_subarray must fit inside the subarray"
            )
        if self.row_bytes % 64 != 0:
            raise ValueError("row_bytes must be a whole number of 64B bursts")

    # ------------------------------------------------------------------
    # Derived geometry
    # ------------------------------------------------------------------
    @property
    def rows_per_bank(self) -> int:
        return self.subarrays_per_bank * self.rows_per_subarray

    @property
    def total_rows(self) -> int:
        return self.banks * self.rows_per_bank

    @property
    def capacity_bytes(self) -> int:
        return self.total_rows * self.row_bytes

    @property
    def usable_rows_per_subarray(self) -> int:
        """Rows available to data (excludes the reserved swap pool)."""
        return self.rows_per_subarray - self.reserved_rows_per_subarray

    @property
    def row_bits(self) -> int:
        """Bits stored in one row."""
        return self.row_bytes * 8

    # ------------------------------------------------------------------
    # Multi-channel (system-level) geometry
    # ------------------------------------------------------------------
    @property
    def system_rows(self) -> int:
        """Rows across all channels (the serving address space)."""
        return self.channels * self.total_rows

    @property
    def system_capacity_bytes(self) -> int:
        """Capacity across all channels."""
        return self.channels * self.capacity_bytes

    def channel_config(self) -> "DRAMConfig":
        """The geometry of one channel of this system (``channels=1``).

        This is what :class:`~repro.serving.ShardedMemorySystem` hands
        each per-channel :class:`~repro.dram.device.DRAMDevice`; for a
        single-channel config it is the config itself, so nothing about
        the paper's experiments changes.
        """
        if self.channels == 1:
            return self
        return replace(self, channels=1)

    def with_channels(self, channels: int) -> "DRAMConfig":
        """This geometry widened (or narrowed) to ``channels`` channels."""
        if channels == self.channels:
            return self
        return replace(self, channels=channels)

    def describe(self) -> str:
        """One-line human-readable geometry summary."""
        cap = self.system_capacity_bytes
        if cap >= GIB:
            cap_text = f"{cap / GIB:g}GB"
        elif cap >= MIB:
            cap_text = f"{cap / MIB:g}MB"
        else:
            cap_text = f"{cap / KIB:g}KB"
        prefix = f"{self.channels} channels x " if self.channels > 1 else ""
        return (
            f"{self.name}: {cap_text}, {prefix}{self.banks} banks x "
            f"{self.subarrays_per_bank} subarrays x "
            f"{self.rows_per_subarray} rows x {self.row_bytes}B"
        )

    # ------------------------------------------------------------------
    # Presets
    # ------------------------------------------------------------------
    @staticmethod
    def tiny() -> "DRAMConfig":
        """Small geometry for unit tests (256 rows, 256B rows)."""
        return DRAMConfig(
            name="tiny",
            banks=2,
            subarrays_per_bank=2,
            rows_per_subarray=64,
            row_bytes=256,
            reserved_rows_per_subarray=4,
        )

    @staticmethod
    def small() -> "DRAMConfig":
        """Experiment geometry: big enough to hold a quantized DNN."""
        return DRAMConfig(
            name="small",
            banks=4,
            subarrays_per_bank=8,
            rows_per_subarray=128,
            row_bytes=1 * KIB,
            reserved_rows_per_subarray=8,
        )

    @staticmethod
    def ddr4_32gb() -> "DRAMConfig":
        """The paper's Table I configuration: 32GB, 16-bank DDR4."""
        return DRAMConfig(
            name="DDR4-32GB",
            banks=16,
            subarrays_per_bank=512,
            rows_per_subarray=512,
            row_bytes=8 * KIB,
            reserved_rows_per_subarray=8,
        )
