"""Auto-refresh engine.

Real DDR4 issues one REF every tREFI; 8192 REFs cover the device in one
64 ms window.  Here each REF refreshes an equal slice of the global row
space in index order and resets the RowHammer counters of the refreshed
rows -- which is exactly the interaction the attacks race against.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .device import DRAMDevice

__all__ = ["RefreshEngine"]


class RefreshEngine:
    """Walks the row space, one slice per tREFI."""

    def __init__(self, device: "DRAMDevice"):
        self.device = device
        timing = device.timing
        self.refs_per_window = max(1, round(timing.tref_w / timing.trefi))
        self.rows_per_ref = math.ceil(device.config.total_rows / self.refs_per_window)
        self.cursor = 0
        self.next_ref_ns = timing.trefi
        self.windows_completed = 0

    def tick(self, now_ns: float) -> None:
        """Issue every REF that became due at or before ``now_ns``."""
        while now_ns >= self.next_ref_ns:
            self._refresh_slice()
            self.next_ref_ns += self.device.timing.trefi

    def quiet_steps(self, now_ns: float, step_ns: float) -> int:
        """How many ``step_ns``-sized steps fit before the next REF is
        due, with the one-step safety margin the bulk engine uses to
        keep every refresh tick on the scalar path."""
        return int((self.next_ref_ns - now_ns) / step_ns) - 1

    def _refresh_slice(self) -> None:
        device = self.device
        total = device.config.total_rows
        start = self.cursor
        end = min(start + self.rows_per_ref, total)
        device.rowhammer.reset_rows(start, end)
        device.stats.refreshes += 1
        device.stats.energy.refresh += device.energy.e_ref
        # REF requires all banks precharged.
        for bank in device.banks:
            bank.open_row = None
        if end >= total:
            self.cursor = 0
            self.windows_completed += 1
        else:
            self.cursor = end
