"""Counters and energy accounting shared by the device and controller."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["EnergyBreakdown", "MemoryStats"]


@dataclass
class EnergyBreakdown:
    """Energy in nanojoules, split by source."""

    activate: float = 0.0
    precharge: float = 0.0
    read: float = 0.0
    write: float = 0.0
    io: float = 0.0
    refresh: float = 0.0
    rowclone: float = 0.0
    lock_table: float = 0.0
    background: float = 0.0

    @property
    def total(self) -> float:
        return (
            self.activate
            + self.precharge
            + self.read
            + self.write
            + self.io
            + self.refresh
            + self.rowclone
            + self.lock_table
            + self.background
        )

    def as_dict(self) -> dict[str, float]:
        return {
            "activate": self.activate,
            "precharge": self.precharge,
            "read": self.read,
            "write": self.write,
            "io": self.io,
            "refresh": self.refresh,
            "rowclone": self.rowclone,
            "lock_table": self.lock_table,
            "background": self.background,
            "total": self.total,
        }


@dataclass
class MemoryStats:
    """Command and event counters for one simulated memory system."""

    activates: int = 0
    precharges: int = 0
    reads: int = 0
    writes: int = 0
    refreshes: int = 0
    rowclones: int = 0
    bit_flips: int = 0
    disturbances: int = 0
    blocked_requests: int = 0
    swaps: int = 0
    swap_copy_failures: int = 0
    lock_lookups: int = 0
    row_hits: int = 0
    row_misses: int = 0
    busy_ns: float = 0.0
    defense_ns: float = 0.0
    energy: EnergyBreakdown = field(default_factory=EnergyBreakdown)

    def as_dict(self) -> dict[str, float]:
        data: dict[str, float] = {
            "activates": self.activates,
            "precharges": self.precharges,
            "reads": self.reads,
            "writes": self.writes,
            "refreshes": self.refreshes,
            "rowclones": self.rowclones,
            "bit_flips": self.bit_flips,
            "disturbances": self.disturbances,
            "blocked_requests": self.blocked_requests,
            "swaps": self.swaps,
            "swap_copy_failures": self.swap_copy_failures,
            "lock_lookups": self.lock_lookups,
            "row_hits": self.row_hits,
            "row_misses": self.row_misses,
            "busy_ns": self.busy_ns,
            "defense_ns": self.defense_ns,
        }
        data.update(
            {f"energy_{k}_nj": v for k, v in self.energy.as_dict().items()}
        )
        return data
