"""Counters and energy accounting shared by the device and controller.

Also home of the *sequential accumulator* helpers the bulk execution
paths use: :func:`walk_add` / :func:`walk_add_many` replay ``count``
repeated ``acc += step`` float additions at C speed (one
``np.add.accumulate`` pass), producing the **bit-identical** final
value the Python walk would -- IEEE-754 addition folded strictly
left-to-right, which is what every scalar hot loop in this codebase
does.  The equivalence is pinned float-for-float by
``tests/test_batch_execution.py``; callers that cannot express their
update as a constant-step fold must keep the explicit walk.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

__all__ = ["EnergyBreakdown", "MemoryStats", "walk_add", "walk_add_many"]

#: Below this run length the Python fold beats the numpy call overhead.
_WALK_VECTOR_MIN = 16


def walk_add(acc: float, step: float, count: int) -> float:
    """``count`` sequential ``acc += step`` additions, bit-identical to
    the scalar walk (``np.add.accumulate`` folds left-to-right)."""
    if count < _WALK_VECTOR_MIN:
        for _ in range(count):
            acc += step
        return acc
    buffer = np.empty(count + 1)
    buffer[0] = acc
    buffer[1:] = step
    np.add.accumulate(buffer, out=buffer)
    return float(buffer[-1])


def walk_add_many(
    accs: Sequence[float], steps: Sequence[float], count: int
) -> tuple[float, ...]:
    """Run several independent constant-step walks of one shared length
    in a single ``np.add.accumulate`` pass; returns the final values in
    input order, each bit-identical to its scalar walk."""
    if count < _WALK_VECTOR_MIN:
        results = []
        for acc, step in zip(accs, steps):
            for _ in range(count):
                acc += step
            results.append(acc)
        return tuple(results)
    buffer = np.empty((len(accs), count + 1))
    buffer[:, 0] = accs
    buffer[:, 1:] = np.asarray(steps, dtype=np.float64)[:, None]
    np.add.accumulate(buffer, axis=1, out=buffer)
    return tuple(float(value) for value in buffer[:, -1])


@dataclass
class EnergyBreakdown:
    """Energy in nanojoules, split by source."""

    activate: float = 0.0
    precharge: float = 0.0
    read: float = 0.0
    write: float = 0.0
    io: float = 0.0
    refresh: float = 0.0
    rowclone: float = 0.0
    lock_table: float = 0.0
    background: float = 0.0

    @property
    def total(self) -> float:
        return (
            self.activate
            + self.precharge
            + self.read
            + self.write
            + self.io
            + self.refresh
            + self.rowclone
            + self.lock_table
            + self.background
        )

    def as_dict(self) -> dict[str, float]:
        return {
            "activate": self.activate,
            "precharge": self.precharge,
            "read": self.read,
            "write": self.write,
            "io": self.io,
            "refresh": self.refresh,
            "rowclone": self.rowclone,
            "lock_table": self.lock_table,
            "background": self.background,
            "total": self.total,
        }


@dataclass
class MemoryStats:
    """Command and event counters for one simulated memory system."""

    activates: int = 0
    precharges: int = 0
    reads: int = 0
    writes: int = 0
    refreshes: int = 0
    rowclones: int = 0
    bit_flips: int = 0
    disturbances: int = 0
    blocked_requests: int = 0
    swaps: int = 0
    swap_copy_failures: int = 0
    lock_lookups: int = 0
    row_hits: int = 0
    row_misses: int = 0
    busy_ns: float = 0.0
    defense_ns: float = 0.0
    energy: EnergyBreakdown = field(default_factory=EnergyBreakdown)

    def as_dict(self) -> dict[str, float]:
        data: dict[str, float] = {
            "activates": self.activates,
            "precharges": self.precharges,
            "reads": self.reads,
            "writes": self.writes,
            "refreshes": self.refreshes,
            "rowclones": self.rowclones,
            "bit_flips": self.bit_flips,
            "disturbances": self.disturbances,
            "blocked_requests": self.blocked_requests,
            "swaps": self.swaps,
            "swap_copy_failures": self.swap_copy_failures,
            "lock_lookups": self.lock_lookups,
            "row_hits": self.row_hits,
            "row_misses": self.row_misses,
            "busy_ns": self.busy_ns,
            "defense_ns": self.defense_ns,
        }
        data.update(
            {f"energy_{k}_nj": v for k, v in self.energy.as_dict().items()}
        )
        return data
