"""DRAM timing parameters and RowHammer thresholds per generation.

All times are in nanoseconds.  The DDR4 values follow a DDR4-2400 CL17
datasheet; DDR3/LPDDR4 presets are included both for completeness and
because Fig. 1(b) of the paper tabulates the RowHammer threshold (TRH)
across generations.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = [
    "TimingParams",
    "DDR3_1600",
    "DDR4_2400",
    "LPDDR4_3200",
    "TRH_BY_GENERATION",
    "trh_table",
]


@dataclass(frozen=True)
class TimingParams:
    """Datasheet timing constraints for one DRAM speed bin.

    Attributes:
        name: Human-readable speed-bin name, e.g. ``"DDR4-2400"``.
        tck: Clock period.
        trcd: ACT to internal RD/WR delay.
        tras: ACT to PRE minimum.
        trp: PRE to ACT minimum.
        tcl: CAS latency (RD command to first data).
        tbl: Burst transfer time for one 64-byte burst.
        tccd: Minimum gap between two column commands.
        twr: Write recovery time.
        trefi: Average refresh command interval.
        trfc: Refresh cycle time (one REF command).
        tref_w: Refresh window -- every row is refreshed once per window.
        taap: Back-to-back ACT-ACT for a RowClone FPM copy (the paper's
            ``AAP`` micro-op); the full intra-subarray row copy completes
            within this time plus one precharge.
        trh: Default RowHammer threshold for this generation (number of
            activations of an aggressor row within one refresh window
            needed to disturb its neighbours).
    """

    name: str
    tck: float
    trcd: float
    tras: float
    trp: float
    tcl: float
    tbl: float
    tccd: float
    twr: float
    trefi: float
    trfc: float
    tref_w: float
    taap: float
    trh: int

    @property
    def trc(self) -> float:
        """Row cycle time: minimum gap between ACTs to the same bank."""
        return self.tras + self.trp

    @property
    def row_miss_ns(self) -> float:
        """Latency of a read that must close one row and open another."""
        return self.trp + self.trcd + self.tcl + self.tbl

    @property
    def row_hit_ns(self) -> float:
        """Latency of a read that hits the open row."""
        return self.tcl + self.tbl

    @property
    def rowclone_ns(self) -> float:
        """Latency of one intra-subarray RowClone copy (AAP + PRE)."""
        return self.taap + self.trp

    def with_trh(self, trh: int) -> "TimingParams":
        """Return a copy of these timings with a different TRH."""
        return replace(self, trh=trh)


DDR3_1600 = TimingParams(
    name="DDR3-1600",
    tck=1.25,
    trcd=13.75,
    tras=35.0,
    trp=13.75,
    tcl=13.75,
    tbl=5.0,
    tccd=6.25,
    twr=15.0,
    trefi=7800.0,
    trfc=260.0,
    tref_w=64e6,
    taap=90.0,
    trh=22_400,
)

DDR4_2400 = TimingParams(
    name="DDR4-2400",
    tck=0.833,
    trcd=14.16,
    tras=32.0,
    trp=14.16,
    tcl=14.16,
    tbl=3.33,
    tccd=5.0,
    twr=15.0,
    trefi=7800.0,
    trfc=350.0,
    tref_w=64e6,
    taap=82.5,
    trh=10_000,
)

LPDDR4_3200 = TimingParams(
    name="LPDDR4-3200",
    tck=0.625,
    trcd=18.0,
    tras=42.0,
    trp=18.0,
    tcl=17.0,
    tbl=2.5,
    tccd=5.0,
    twr=18.0,
    trefi=3904.0,
    trfc=280.0,
    tref_w=32e6,
    taap=90.0,
    trh=4_800,
)

#: RowHammer threshold by DRAM generation, as tabulated in Fig. 1(b) of
#: the paper (values from Kim et al., ISCA 2020).  ``LPDDR4 (new)`` is
#: reported as a 4.8K-9K range; both endpoints are kept.
TRH_BY_GENERATION: dict[str, tuple[int, int]] = {
    "DDR3 (old)": (139_000, 139_000),
    "DDR3 (new)": (22_400, 22_400),
    "DDR4 (old)": (17_500, 17_500),
    "DDR4 (new)": (10_000, 10_000),
    "LPDDR4 (old)": (16_800, 16_800),
    "LPDDR4 (new)": (4_800, 9_000),
}


def trh_table() -> list[tuple[str, str]]:
    """Return Fig. 1(b) as ``(generation, formatted TRH)`` rows."""
    rows = []
    for generation, (low, high) in TRH_BY_GENERATION.items():
        if low == high:
            text = _format_k(low)
        else:
            text = f"{_format_k(low)} - {_format_k(high)}"
        rows.append((generation, text))
    return rows


def _format_k(value: int) -> str:
    """Format an activation count the way the paper does (e.g. 22.4K)."""
    thousands = value / 1000.0
    if thousands == int(thousands):
        return f"{int(thousands)}K"
    return f"{thousands:.1f}K"
