"""Canonical DRAM-Locker micro-programs.

The SWAP operation of Fig. 4(b) is three row copies through the buffer
row:

1. ``copy buffer  <- locked``   (pull the locked row's data out)
2. ``copy locked  <- free``     (move the free row's data in)
3. ``copy free    <- buffer``   (land the locked data in the free row)

After ``done`` the *data* of the locked and free rows have exchanged
places while the lock-table is untouched.
"""

from __future__ import annotations

from .instructions import bnez, copy, done, encode

__all__ = [
    "REG_LOCKED",
    "REG_FREE",
    "REG_BUFFER",
    "REG_COUNT",
    "swap_program",
    "repeat_copy_program",
]

#: Register conventions used by the generated programs.
REG_LOCKED = 1
REG_FREE = 2
REG_BUFFER = 3
REG_COUNT = 4


def swap_program(
    locked_reg: int = REG_LOCKED,
    free_reg: int = REG_FREE,
    buffer_reg: int = REG_BUFFER,
) -> list[int]:
    """The three-copy SWAP micro-program of Fig. 4(b)."""
    return [
        encode(copy(buffer_reg, locked_reg)),
        encode(copy(locked_reg, free_reg)),
        encode(copy(free_reg, buffer_reg)),
        encode(done()),
    ]


def repeat_copy_program(
    dst_reg: int,
    src_reg: int,
    count_reg: int = REG_COUNT,
) -> list[int]:
    """Copy ``src -> dst`` repeatedly, driven by a ``bnez`` loop.

    The iteration count is whatever value the caller preloads into
    ``count_reg``; this is the control-flow pattern the paper's ``bnez``
    / ``done`` opcodes exist for.
    """
    return [
        encode(copy(dst_reg, src_reg)),
        encode(bnez(count_reg, -1)),
        encode(done()),
    ]
