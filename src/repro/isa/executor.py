"""Micro-program executor.

The executor owns a micro-register file and walks a list of 16-bit
words.  A ``COPY`` dispatches to an injected ``copy_fn(src_row, dst_row)``
-- usually :meth:`repro.dram.DRAMDevice.rowclone`, or the DRAM-Locker
swap engine's failure-injecting wrapper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from .instructions import NUM_MICRO_REGS, Opcode, decode

__all__ = ["MicroRegisterFile", "ExecutionResult", "MicroExecutor", "ExecutionError"]

CopyFn = Callable[[int, int], None]


class ExecutionError(RuntimeError):
    """Raised on runaway or malformed micro-programs."""


class MicroRegisterFile:
    """The 128-entry register file addressed by 7-bit specifiers."""

    def __init__(self) -> None:
        self._regs = [0] * NUM_MICRO_REGS

    def __getitem__(self, reg: int) -> int:
        return self._regs[self._check(reg)]

    def __setitem__(self, reg: int, value: int) -> None:
        self._regs[self._check(reg)] = int(value)

    def load(self, values: dict[int, int]) -> None:
        """Bulk-set registers from a ``{reg: value}`` mapping."""
        for reg, value in values.items():
            self[reg] = value

    @staticmethod
    def _check(reg: int) -> int:
        if not 0 <= reg < NUM_MICRO_REGS:
            raise IndexError(f"micro-register r{reg} out of range")
        return reg


@dataclass
class ExecutionResult:
    """What one micro-program run did."""

    steps: int = 0
    copies: int = 0
    copy_trace: list[tuple[int, int]] = field(default_factory=list)
    halted: bool = False


class MicroExecutor:
    """Runs DRAM-Locker micro-programs against a copy backend."""

    def __init__(
        self,
        copy_fn: CopyFn,
        registers: MicroRegisterFile | None = None,
        max_steps: int = 1_000_000,
    ):
        self.copy_fn = copy_fn
        self.registers = registers or MicroRegisterFile()
        self.max_steps = max_steps

    def run(self, program: list[int]) -> ExecutionResult:
        """Execute ``program`` (16-bit words) until ``done`` or fall-off."""
        result = ExecutionResult()
        pc = 0
        regs = self.registers
        while pc < len(program):
            if result.steps >= self.max_steps:
                raise ExecutionError(
                    f"micro-program exceeded {self.max_steps} steps (missing done?)"
                )
            instruction = decode(program[pc])
            result.steps += 1
            if instruction.opcode is Opcode.DONE:
                result.halted = True
                return result
            if instruction.opcode is Opcode.COPY:
                src_row = regs[instruction.b]
                dst_row = regs[instruction.a]
                self.copy_fn(src_row, dst_row)
                result.copies += 1
                result.copy_trace.append((src_row, dst_row))
                pc += 1
            elif instruction.opcode is Opcode.BNEZ:
                regs[instruction.a] -= 1
                if regs[instruction.a] != 0:
                    pc += instruction.b
                    if pc < 0:
                        raise ExecutionError("branch target before program start")
                else:
                    pc += 1
            else:  # NOP
                pc += 1
        return result
