"""DRAM-Locker's 16-bit instruction set (paper Fig. 5).

Two instruction *types* exist after compiling the upper-level code:

* a **row-copy** instruction built on RowClone (``OP = 01``), carrying a
  destination and a source micro-register, each naming a DRAM row;
* **control** instructions for loops and termination (``OP = 10`` is
  ``bnez``, ``OP = 11`` is ``done``).

Encoding (16 bits)::

    15 14 | 13 ........ 7 | 6 ......... 0
    OP    | dst / reg     | src / offset

Field widths are 2 + 7 + 7; the paper's figure shows the same three-field
split without naming the widths, so 7-bit register specifiers (128
micro-registers) are our documented choice.  ``bnez`` is
decrement-and-branch-if-nonzero: the register is decremented first and
the branch is taken while it remains nonzero, which is the minimal
semantics that makes loops expressible with no arithmetic opcode.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum

__all__ = [
    "NUM_MICRO_REGS",
    "Opcode",
    "Instruction",
    "copy",
    "bnez",
    "done",
    "encode",
    "decode",
]

NUM_MICRO_REGS = 128
_FIELD_MASK = 0x7F
_OFFSET_BIAS = 64  # signed 7-bit offsets are stored excess-64


class Opcode(IntEnum):
    """Two-bit major opcode."""

    NOP = 0b00
    COPY = 0b01
    BNEZ = 0b10
    DONE = 0b11


@dataclass(frozen=True)
class Instruction:
    """One decoded 16-bit DRAM-Locker instruction."""

    opcode: Opcode
    a: int = 0  # dst register (COPY) / counter register (BNEZ)
    b: int = 0  # src register (COPY) / branch offset (BNEZ)

    def __str__(self) -> str:
        if self.opcode is Opcode.COPY:
            return f"copy r{self.a}, r{self.b}"
        if self.opcode is Opcode.BNEZ:
            return f"bnez r{self.a}, {self.b}"
        if self.opcode is Opcode.DONE:
            return "done"
        return "nop"


def copy(dst_reg: int, src_reg: int) -> Instruction:
    """Row-copy: RowClone the row named by ``src_reg`` onto ``dst_reg``."""
    _check_reg(dst_reg)
    _check_reg(src_reg)
    return Instruction(Opcode.COPY, dst_reg, src_reg)


def bnez(reg: int, offset: int) -> Instruction:
    """Decrement ``reg``; branch by ``offset`` words while nonzero."""
    _check_reg(reg)
    if not -_OFFSET_BIAS <= offset < _OFFSET_BIAS:
        raise ValueError(f"branch offset {offset} outside signed 7-bit range")
    return Instruction(Opcode.BNEZ, reg, offset)


def done() -> Instruction:
    """Terminate the micro-program."""
    return Instruction(Opcode.DONE)


def encode(instruction: Instruction) -> int:
    """Pack an :class:`Instruction` into its 16-bit word."""
    op = int(instruction.opcode)
    if instruction.opcode is Opcode.COPY:
        a, b = instruction.a, instruction.b
        _check_reg(a)
        _check_reg(b)
    elif instruction.opcode is Opcode.BNEZ:
        _check_reg(instruction.a)
        a = instruction.a
        b = instruction.b + _OFFSET_BIAS
        if not 0 <= b <= _FIELD_MASK:
            raise ValueError(f"branch offset {instruction.b} not encodable")
    else:
        a = b = 0
    return (op << 14) | ((a & _FIELD_MASK) << 7) | (b & _FIELD_MASK)


def decode(word: int) -> Instruction:
    """Unpack a 16-bit word back into an :class:`Instruction`."""
    if not 0 <= word <= 0xFFFF:
        raise ValueError(f"instruction word {word:#x} is not 16-bit")
    opcode = Opcode((word >> 14) & 0b11)
    a = (word >> 7) & _FIELD_MASK
    b = word & _FIELD_MASK
    if opcode is Opcode.BNEZ:
        return Instruction(opcode, a, b - _OFFSET_BIAS)
    if opcode is Opcode.COPY:
        return Instruction(opcode, a, b)
    return Instruction(opcode)


def _check_reg(reg: int) -> None:
    if not 0 <= reg < NUM_MICRO_REGS:
        raise ValueError(f"micro-register r{reg} out of range (0..{NUM_MICRO_REGS - 1})")
