"""Two-way assembler for the DRAM-Locker micro-ISA.

Grammar (one instruction per line, ``;`` starts a comment)::

    copy rD, rS
    bnez rC, <offset>
    done
    nop
"""

from __future__ import annotations

import re

from .instructions import Instruction, Opcode, bnez, copy, decode, done, encode

__all__ = ["assemble", "disassemble", "AssemblyError"]


class AssemblyError(ValueError):
    """Raised for malformed assembly text."""


_COPY_RE = re.compile(r"^copy\s+r(\d+)\s*,\s*r(\d+)$")
_BNEZ_RE = re.compile(r"^bnez\s+r(\d+)\s*,\s*(-?\d+)$")


def assemble(text: str) -> list[int]:
    """Assemble source text into a list of 16-bit instruction words."""
    words: list[int] = []
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split(";", 1)[0].strip().lower()
        if not line:
            continue
        try:
            words.append(encode(_parse(line)))
        except ValueError as exc:
            raise AssemblyError(f"line {line_no}: {exc}") from exc
    return words


def disassemble(words: list[int]) -> str:
    """Render instruction words back to canonical assembly text."""
    return "\n".join(str(decode(word)) for word in words)


def _parse(line: str) -> Instruction:
    if line == "done":
        return done()
    if line == "nop":
        return Instruction(Opcode.NOP)
    match = _COPY_RE.match(line)
    if match:
        return copy(int(match.group(1)), int(match.group(2)))
    match = _BNEZ_RE.match(line)
    if match:
        return bnez(int(match.group(1)), int(match.group(2)))
    raise AssemblyError(f"cannot parse instruction {line!r}")
