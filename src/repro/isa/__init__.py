"""DRAM-Locker's 16-bit micro-ISA: encoding, assembler, executor."""

from .assembler import AssemblyError, assemble, disassemble
from .executor import (
    ExecutionError,
    ExecutionResult,
    MicroExecutor,
    MicroRegisterFile,
)
from .instructions import (
    NUM_MICRO_REGS,
    Instruction,
    Opcode,
    bnez,
    copy,
    decode,
    done,
    encode,
)
from .programs import (
    REG_BUFFER,
    REG_COUNT,
    REG_FREE,
    REG_LOCKED,
    repeat_copy_program,
    swap_program,
)

__all__ = [
    "AssemblyError",
    "ExecutionError",
    "ExecutionResult",
    "Instruction",
    "MicroExecutor",
    "MicroRegisterFile",
    "NUM_MICRO_REGS",
    "Opcode",
    "REG_BUFFER",
    "REG_COUNT",
    "REG_FREE",
    "REG_LOCKED",
    "assemble",
    "bnez",
    "copy",
    "decode",
    "disassemble",
    "done",
    "encode",
    "repeat_copy_program",
    "swap_program",
]
